// Live resharding: installing a shard.SplitHeaviest plan under load.
//
// The migration is a fenced protocol step, not a redeploy:
//
//	plan   — PlanSplitHeaviest over the live ops_routed counters picks the
//	         donor shard and the key span to move (clamped around the
//	         deque-reserved window).
//	fence  — the migrator claims the donor's fence with the same
//	         CAS-with-fence step a cross-shard commit uses, under a
//	         conflict-with-everything key signature, so every local
//	         operation and every competing coordinator serializes against
//	         the move.
//	copy   — the moved span streams donor → recipient in bounded range
//	         transactions, each guarded by the fence hold and re-stamping
//	         the holder heartbeat.
//	flip   — the grown fleet is already published, the span installed, so
//	         the placement swaps atomically (shard.Epoched) under the next
//	         epoch; every router loads the pair per-operation.
//	release — still fenced, the donor bumps its placement-epoch word
//	         (stale-routed operations start bouncing for re-routing the
//	         instant the fence drops), deletes the moved span in bounded
//	         batches, and releases.
//
// Crash model: a migrator that dies mid-copy or after install-but-
// before-flip leaves the donor's fence held with an unregistered token;
// the failure detector's orphan recovery releases it (rollback — the
// placement never flipped, so the donor still serves the whole span, and
// the partial copy on the spare shard is cleared when the next attempt
// begins). See docs/sharding.md for the crash matrix.
package serve

import (
	"fmt"
	"net/http"
	"time"

	proteustm "repro"
	"repro/internal/fault"
	"repro/internal/shard"
)

// dequeHome is the shard the deque lives on. The deque is not
// partitioned and never migrates.
const dequeHome = 0

// DequeReservedLo is the bottom of the deque-reserved key window
// [DequeReservedLo, 2^64-1]: the key-space shadow of the unpartitioned
// deque pinned to shard dequeHome. A reshard plan must never move it —
// clampPlanForDeque trims a moved span that reaches into the window and
// rejects one that lies entirely inside it — so the guard that deque
// state never migrates is structural, not an implicit assumption.
const DequeReservedLo = ^uint64(0) - 1023

// migrateBatch bounds the key-value pairs one migration copy/delete
// transaction touches, keeping each step a bounded transaction instead
// of one scan proportional to the span's population.
const migrateBatch = 256

// autosplitMinRouted is the minimum total routed operations before the
// autosplit trigger trusts the load signal enough to split on it.
const autosplitMinRouted = 1024

// reshardResult is the JSON reply of POST /admin/reshard (and the
// autosplit trigger's log source). Applied=false with a Reason is the
// explicit no-op: nothing worth splitting, no degenerate plan installed.
type reshardResult struct {
	Applied      bool   `json:"applied"`
	Reason       string `json:"reason,omitempty"`
	Err          string `json:"err,omitempty"`
	Epoch        uint64 `json:"epoch,omitempty"`
	Donor        int    `json:"donor"`
	NewShard     int    `json:"new_shard"`
	MovedLo      uint64 `json:"moved_lo"`
	MovedHi      uint64 `json:"moved_hi"`
	KeysMigrated uint64 `json:"keys_migrated"`
	Shards       int    `json:"shards"`
}

// handleReshard serves POST /admin/reshard: plan, migrate and install
// one SplitHeaviest step live.
func (s *Server) handleReshard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, reshardResult{Err: "POST required"})
		return
	}
	res, code := s.Reshard()
	writeJSON(w, code, res)
}

// Reshard computes a SplitHeaviest plan from the live per-shard routed
// counters and installs it: grow the fleet by one shard, migrate the
// moved span under the donor's fence, flip the placement epoch. One
// reshard runs at a time (409 when busy); a plan the planner cannot
// produce (zero load, un-splittable span) is an explicit no-op, and a
// plan that would move deque-reserved keys is clamped or rejected.
func (s *Server) Reshard() (reshardResult, int) {
	// Registering in inflight keeps Close from tearing shards down under
	// a live migration (it waits for us like any other submission).
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.closed.Load() {
		return reshardResult{Err: "server shutting down"}, http.StatusServiceUnavailable
	}
	if !s.reshardMu.TryLock() {
		return reshardResult{Err: "a reshard is already in progress"}, http.StatusConflict
	}
	defer s.reshardMu.Unlock()
	s.resharding.Store(true)
	defer s.resharding.Store(false)

	part, _ := s.place.Load()
	rp, ok := part.(*shard.RangePartitioner)
	if !ok {
		return reshardResult{Err: fmt.Sprintf("resharding requires the range partitioner (have %q)", part.Kind())},
			http.StatusBadRequest
	}
	fleet := s.fleet()
	load := make([]uint64, part.Shards())
	for i := range load {
		load[i] = fleet[i].routed.Load()
	}
	plan, ok := rp.PlanSplitHeaviest(load)
	if !ok {
		s.opts.Logf("serve: reshard no-op: zero load or heaviest span too narrow to split (shards=%d)", part.Shards())
		return reshardResult{Reason: "no splittable span (zero load or heaviest span too narrow)",
			Shards: part.Shards()}, http.StatusOK
	}
	plan, err := clampPlanForDeque(plan)
	if err != nil {
		return reshardResult{Err: err.Error(), Donor: plan.Donor, NewShard: plan.NewShard,
			Shards: part.Shards()}, http.StatusBadRequest
	}

	moved, newEpoch, err := s.migrate(plan)
	res := reshardResult{
		Donor: plan.Donor, NewShard: plan.NewShard,
		MovedLo: plan.MovedLo, MovedHi: plan.MovedHi,
		KeysMigrated: moved, Shards: s.part().Shards(),
	}
	if err != nil {
		res.Err = err.Error()
		s.opts.Logf("serve: reshard failed: %v", err)
		return res, http.StatusServiceUnavailable
	}
	s.reshards.Add(1)
	s.keysMigrated.Add(moved)
	res.Applied = true
	res.Epoch = newEpoch
	s.opts.Logf("serve: reshard installed: shard %d split, span [%d, %d] -> shard %d, %d keys migrated, placement epoch %d",
		plan.Donor, plan.MovedLo, plan.MovedHi, plan.NewShard, moved, newEpoch)
	return res, http.StatusOK
}

// clampPlanForDeque enforces the deque guard on a split plan: a moved
// span that reaches into the deque-reserved window is trimmed to end at
// DequeReservedLo-1 (the window stays with the donor via an extra tail
// span), and a span entirely inside the window is rejected outright.
// Without the clamp every top-span split would be illegal — the top
// span's moved interval always runs to 2^64-1.
func clampPlanForDeque(plan shard.SplitPlan) (shard.SplitPlan, error) {
	if plan.MovedLo >= DequeReservedLo {
		return plan, fmt.Errorf("reshard plan rejected: moved span [%d, %d] lies inside the deque-reserved window [%d, 2^64-1]",
			plan.MovedLo, plan.MovedHi, uint64(DequeReservedLo))
	}
	if plan.MovedHi < DequeReservedLo {
		return plan, nil
	}
	starts, owners := plan.Grown.Spans()
	// The moved span starts at MovedLo and is owned by NewShard; reaching
	// past DequeReservedLo it must be the table's last span (no boundary
	// is ever created above DequeReservedLo).
	j := len(starts) - 1
	if starts[j] != plan.MovedLo || owners[j] != plan.NewShard {
		return plan, fmt.Errorf("reshard plan rejected: moved span [%d, %d] overlaps the deque-reserved window mid-table",
			plan.MovedLo, plan.MovedHi)
	}
	starts = append(starts, DequeReservedLo)
	owners = append(owners, plan.Donor)
	grown, err := shard.NewRangeFromSpans(starts, owners, plan.Grown.Universe())
	if err != nil {
		return plan, fmt.Errorf("reshard plan rejected: clamping around the deque-reserved window: %v", err)
	}
	plan.MovedHi = DequeReservedLo - 1
	plan.Grown = grown
	return plan, nil
}

// migrate executes one clamped split plan: grow (or reuse) the fleet's
// spare shard, clear it, fence the donor, copy the span, flip the
// placement, and clean the donor up under the same fence. It returns the
// migrated pair count and the installed placement epoch.
func (s *Server) migrate(plan shard.SplitPlan) (moved uint64, newEpoch uint64, err error) {
	fleet := s.fleet()
	donor := fleet[plan.Donor]
	var recip *shardState
	if plan.NewShard < len(fleet) {
		// A spare shard left by an earlier rolled-back attempt: reuse it.
		recip = fleet[plan.NewShard]
	} else {
		recip, err = s.newShard(plan.NewShard)
		if err != nil {
			return 0, 0, fmt.Errorf("building shard %d: %w", plan.NewShard, err)
		}
		grown := make([]*shardState, len(fleet), len(fleet)+1)
		copy(grown, fleet)
		grown = append(grown, recip)
		// Publish the grown fleet before the placement can name it:
		// readers load the placement first, so once the flip lands, index
		// NewShard is guaranteed present.
		s.fleetPtr.Store(&grown)
		s.startShardWorkers(recip)
	}

	// Clear the recipient's KV state: an earlier rolled-back attempt may
	// have left a partial copy, and stray keys would pollute range scans
	// once the recipient starts serving.
	for {
		var more bool
		r := s.ctl(recip, func(w *proteustm.Worker, slot int) response {
			w.Atomic(func(tx proteustm.Txn) {
				_, more = recip.store.DeleteSpan(tx, slot, 0, ^uint64(0), migrateBatch)
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			return 0, 0, fmt.Errorf("clearing recipient shard %d: %s", plan.NewShard, r.Err)
		}
		if !more {
			break
		}
	}

	// Fence the donor. The conflict-with-everything signature makes the
	// keyed granularity behave exactly like the whole-shard word for the
	// migration window: every local KV operation requeues, every
	// competing cross-shard commit serializes.
	token := s.nextToken.Add(1)
	hold, err := s.acquireMigrationFence(donor, token)
	if err != nil {
		return 0, 0, err
	}
	beatAddr := donor.store.FenceBeatWord()
	if hold.slot >= 0 {
		_, _, beatAddr = donor.store.FenceSlotWordsOf(hold.slot)
	}

	// Copy the moved span donor → recipient in bounded batches. Each
	// export runs under the fence-hold guard — if the failure detector
	// recovered the fence, this migration is dead and must stop — and
	// re-stamps the holder heartbeat so a long copy is never mistaken
	// for an orphan.
	lo := plan.MovedLo
	for {
		if _, fire := s.opts.Fault.Fire(fault.ReshardDonorCrash, plan.Donor); fire {
			// Injected migrator crash mid-copy: abandon with the fence
			// held. The failure detector sees an unregistered token and
			// rolls the migration back by releasing the fence; the
			// placement never flipped, so the donor still serves the whole
			// span and the partial copy is cleared on the next attempt.
			return 0, 0, fmt.Errorf("reshard migrator crashed mid-copy (injected fault); fence recovery pending")
		}
		var keys, vals []uint64
		var next uint64
		var resume, held bool
		r := s.ctl(donor, func(w *proteustm.Worker, _ int) response {
			w.Atomic(func(tx proteustm.Txn) {
				keys, vals, next, resume = nil, nil, 0, false
				if held = donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch); !held {
					return
				}
				keys, vals, next, resume = donor.store.ExportSpan(tx, lo, plan.MovedHi, migrateBatch)
				tx.Store(beatAddr, uint64(time.Now().UnixNano()))
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			s.releaseMigrationFence(donor, hold, token)
			return 0, 0, fmt.Errorf("exporting span from shard %d: %s", plan.Donor, r.Err)
		}
		if !held {
			return 0, 0, fmt.Errorf("donor fence recovered out from under the migration; rolled back")
		}
		if len(keys) > 0 {
			r = s.ctl(recip, func(w *proteustm.Worker, slot int) response {
				w.Atomic(func(tx proteustm.Txn) {
					recip.store.InstallPairs(tx, slot, keys, vals)
				})
				return response{Applied: true}
			})
			if r.Err != "" {
				s.releaseMigrationFence(donor, hold, token)
				return 0, 0, fmt.Errorf("installing span on shard %d: %s", plan.NewShard, r.Err)
			}
			moved += uint64(len(keys))
		}
		if !resume {
			break
		}
		lo = next
	}

	if _, fire := s.opts.Fault.Fire(fault.ReshardInstallCrash, plan.Donor); fire {
		// Injected migrator crash after install, before the flip: same
		// rollback as the donor-side crash — the copied span is
		// unreachable garbage until the next attempt clears it.
		return 0, 0, fmt.Errorf("reshard migrator crashed before the flip (injected fault); fence recovery pending")
	}

	// Flip. The grown fleet is published and the span fully installed,
	// so any operation routed under the new epoch finds its shard and
	// its data; everything routed under the old epoch either requeues on
	// the still-held fence or bounces off the placement bump below.
	newEpoch = s.place.Install(plan.Grown)

	// Donor cleanup, entirely under the fence: bump the placement-epoch
	// word (in the same transactions that delete, so a stale-routed
	// operation can never observe the donor after a delete without also
	// observing the bump), remove the moved span in bounded batches,
	// release. If the detector stole the fence mid-cleanup (a falsely
	// declared death — the beat re-stamps make this a pathological
	// FenceDeadline), re-acquire and resume: the flip is installed, and
	// leftover moved keys on the donor would tear range scans.
	held := true
	for {
		if !held {
			hold, err = s.acquireMigrationFence(donor, token)
			if err != nil {
				// Can't re-fence: publish the bump unfenced — monotonic and
				// harmless, and without it stale-routed operations would
				// read the half-deleted span.
				s.ctl(donor, func(w *proteustm.Worker, _ int) response {
					w.Atomic(func(tx proteustm.Txn) { donor.store.BumpPlacement(tx, newEpoch) })
					return response{}
				})
				return moved, newEpoch, fmt.Errorf("re-fencing donor for cleanup: %w", err)
			}
			beatAddr = donor.store.FenceBeatWord()
			if hold.slot >= 0 {
				_, _, beatAddr = donor.store.FenceSlotWordsOf(hold.slot)
			}
			held = true
		}
		var more bool
		r := s.ctl(donor, func(w *proteustm.Worker, slot int) response {
			w.Atomic(func(tx proteustm.Txn) {
				more = false
				if held = donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch); !held {
					return
				}
				donor.store.BumpPlacement(tx, newEpoch)
				_, more = donor.store.DeleteSpan(tx, slot, plan.MovedLo, plan.MovedHi, migrateBatch)
				tx.Store(beatAddr, uint64(time.Now().UnixNano()))
			})
			return response{Applied: true}
		})
		if r.Err != "" {
			s.releaseMigrationFence(donor, hold, token)
			return moved, newEpoch, fmt.Errorf("cleaning donor shard %d: %s", plan.Donor, r.Err)
		}
		if !held {
			continue
		}
		if !more {
			break
		}
	}
	s.releaseMigrationFence(donor, hold, token)
	return moved, newEpoch, nil
}

// acquireMigrationFence claims the donor's fence for the migration,
// riding out coordinator contention with the cross-shard backoff
// schedule.
func (s *Server) acquireMigrationFence(donor *shardState, token uint64) (response, error) {
	for attempt := 0; ; attempt++ {
		r := s.ctlAcquire(donor, token, ^uint64(0))
		if r.Err != "" {
			return r, fmt.Errorf("acquiring donor fence: %s", r.Err)
		}
		if r.Applied {
			return r, nil
		}
		if attempt+1 >= s.opts.CrossRetries {
			return r, fmt.Errorf("donor fence contention: exhausted %d acquisition attempts", s.opts.CrossRetries)
		}
		s.crossBackoff(attempt)
	}
}

// releaseMigrationFence frees the migration's fence hold, epoch-guarded
// like every release: a hold the failure detector already recovered is
// left alone.
func (s *Server) releaseMigrationFence(donor *shardState, hold response, token uint64) {
	s.ctl(donor, func(w *proteustm.Worker, _ int) response {
		w.Atomic(func(tx proteustm.Txn) {
			if donor.store.FenceHeldAt(tx, hold.slot, token, hold.epoch) {
				donor.store.FenceReleaseAt(tx, hold.slot, hold.epoch)
			}
		})
		return response{}
	})
}

// autosplitLoop is the background trigger behind --autosplit: poll the
// per-shard routed counters, and when the hottest shard's share crosses
// Options.AutosplitShare (with enough traffic to trust the signal and
// room under AutosplitMaxShards), run the same reshard step the admin
// endpoint does. A plan the planner declines is an explicit logged
// no-op — never a degenerate install.
func (s *Server) autosplitLoop() {
	defer s.autosplitWG.Done()
	t := time.NewTicker(s.opts.AutosplitInterval)
	defer t.Stop()
	for {
		select {
		case <-s.autosplitStop:
			return
		case <-t.C:
		}
		if s.closed.Load() {
			return
		}
		part, _ := s.place.Load()
		if part.Kind() != shard.KindRange {
			s.opts.Logf("serve: autosplit disabled: requires the range partitioner (have %q)", part.Kind())
			return
		}
		if part.Shards() >= s.opts.AutosplitMaxShards {
			continue
		}
		fleet := s.fleet()
		var total, hottest uint64
		for i := 0; i < part.Shards() && i < len(fleet); i++ {
			v := fleet[i].routed.Load()
			total += v
			if v > hottest {
				hottest = v
			}
		}
		if total < autosplitMinRouted || float64(hottest)/float64(total) <= s.opts.AutosplitShare {
			continue
		}
		res, _ := s.Reshard()
		switch {
		case res.Applied:
			s.opts.Logf("serve: autosplit: shard %d split at placement epoch %d (%d keys migrated, hottest share %.2f)",
				res.Donor, res.Epoch, res.KeysMigrated, float64(hottest)/float64(total))
		case res.Err != "":
			s.opts.Logf("serve: autosplit attempt failed: %s", res.Err)
		}
	}
}
