package polytm_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/polytm"
	"repro/internal/tm"
)

// TestReconfigureFuzz property-tests the reconfiguration protocol: any
// random sequence of configurations applied while workers hammer counters
// must preserve the counter total and leave the pool in the last requested
// configuration.
func TestReconfigureFuzz(t *testing.T) {
	f := func(seq []uint16) bool {
		const workers = 6
		p := polytm.New(1<<12, workers, config.Config{Alg: config.TL2, Threads: workers, Budget: 4})
		base := p.Heap().MustAlloc(16)
		var done atomic.Bool
		var committed atomic.Uint64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				c := p.Ctx(id)
				for !done.Load() {
					slot := tm.Addr(c.Rand() % 16)
					p.Atomic(id, func(tx tm.Txn) {
						tx.Store(base+slot, tx.Load(base+slot)+1)
					})
					committed.Add(1)
				}
			}(w)
		}
		var last config.Config
		applied := false
		for _, raw := range seq {
			cfg := config.Config{
				Alg:     config.AlgID(raw % uint16(config.NumAlgs)),
				Threads: int(raw>>3)%workers + 1,
				Budget:  int(raw>>6)%8 + 1,
				Policy:  htm.CapacityPolicy(raw % 3),
			}
			if err := p.Reconfigure(cfg); err != nil {
				t.Errorf("Reconfigure(%v): %v", cfg, err)
				break
			}
			last, applied = cfg, true
		}
		// Reopen everyone so workers can observe done.
		final := config.Config{Alg: config.TL2, Threads: workers}
		if err := p.Reconfigure(final); err != nil {
			t.Fatal(err)
		}
		done.Store(true)
		wg.Wait()
		if applied && p.Config() != final {
			t.Errorf("final config %v, want %v (last requested %v)", p.Config(), final, last)
		}
		var total uint64
		for i := 0; i < 16; i++ {
			total += p.Heap().LoadWord(base + tm.Addr(i))
		}
		return total == committed.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestGateReentryAfterManyCycles stresses repeated block/unblock cycles of
// a single slot (the fetch-and-add state must never drift).
func TestGateReentryAfterManyCycles(t *testing.T) {
	p := polytm.New(1<<10, 2, config.Config{Alg: config.NOrec, Threads: 2})
	a := p.Heap().MustAlloc(1)
	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			p.Atomic(1, func(tx tm.Txn) {
				tx.Store(a, tx.Load(a)+1)
			})
		}
	}()
	// Wait for the worker's first commit so progress is attributable to
	// surviving the gate cycles, then churn the gate.
	for p.Heap().LoadWord(a) == 0 {
	}
	for i := 0; i < 300; i++ {
		threads := 1 + i%2
		if err := p.Reconfigure(config.Config{Alg: config.NOrec, Threads: threads}); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Reconfigure(config.Config{Alg: config.NOrec, Threads: 2}); err != nil {
		t.Fatal(err)
	}
	done.Store(true)
	wg.Wait()
	if p.Heap().LoadWord(a) == 0 {
		t.Error("worker made no progress across gate cycles")
	}
}
