package shard

import "testing"

// TestOwnerInRangeAndDeterministic pins the router's two basic contracts:
// owners are valid shard indexes, and ownership is a pure function of
// (key, shard count).
func TestOwnerInRangeAndDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16, 64} {
		a, b := New(n), New(n)
		for k := uint64(0); k < 10000; k++ {
			o := a.Owner(k)
			if o < 0 || o >= n {
				t.Fatalf("n=%d: Owner(%d) = %d out of range", n, k, o)
			}
			if o != b.Owner(k) {
				t.Fatalf("n=%d: two rings disagree on key %d: %d vs %d", n, k, o, b.Owner(k))
			}
		}
	}
}

// TestFullCoverage requires every shard to own a non-trivial share of the
// key space — no shard may be unreachable from the ring, and vnode
// placement must keep the split roughly balanced.
func TestFullCoverage(t *testing.T) {
	const probes = 1 << 16
	for _, n := range []int{2, 4, 8, 16, 64} {
		r := New(n)
		counts := make([]int, n)
		for k := uint64(0); k < probes; k++ {
			counts[r.Owner(k)]++
		}
		fair := probes / n
		for s, c := range counts {
			if c == 0 {
				t.Fatalf("n=%d: shard %d owns no keys", n, s)
			}
			if c < fair/4 || c > fair*4 {
				t.Errorf("n=%d: shard %d owns %d of %d keys (fair share %d) — ring badly unbalanced", n, s, c, probes, fair)
			}
		}
	}
}

// TestMinimalRemapping checks the consistent-hashing property that makes
// the ring worth having over key%N: growing from N to N+1 shards moves
// only the keys the new shard takes over.
func TestMinimalRemapping(t *testing.T) {
	const probes = 1 << 16
	for _, n := range []int{2, 4, 8} {
		old, grown := New(n), New(n+1)
		moved := 0
		for k := uint64(0); k < probes; k++ {
			a, b := old.Owner(k), grown.Owner(k)
			if a != b {
				moved++
				if b != n {
					t.Fatalf("n=%d→%d: key %d moved %d→%d, not to the new shard", n, n+1, k, a, b)
				}
			}
		}
		// The new shard's fair share is probes/(n+1); allow generous slack
		// but reject wholesale remapping (key%N moves ~ (n-1)/n of keys).
		if moved == 0 || moved > probes/2 {
			t.Errorf("n=%d→%d: %d of %d keys moved (fair share ≈ %d)", n, n+1, moved, probes, probes/(n+1))
		}
	}
}

// TestParticipants checks the ordered distinct-owner set used for fence
// acquisition.
func TestParticipants(t *testing.T) {
	r := New(4)
	keys := make([]uint64, 0, 256)
	for k := uint64(0); k < 256; k++ {
		keys = append(keys, k)
	}
	parts := r.Participants(keys)
	if len(parts) != 4 {
		t.Fatalf("256 sequential keys hit %d of 4 shards: %v", len(parts), parts)
	}
	for i, p := range parts {
		if p != i {
			t.Fatalf("participants not sorted/distinct: %v", parts)
		}
	}
	one := r.Participants([]uint64{7, 7, 7})
	if len(one) != 1 || one[0] != r.Owner(7) {
		t.Fatalf("Participants({7,7,7}) = %v", one)
	}
}
