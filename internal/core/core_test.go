package core_test

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/htm"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/tm"
)

func testConfigs() []config.Config {
	var out []config.Config
	for _, alg := range []config.AlgID{config.TL2, config.TinySTM, config.NOrec} {
		for _, t := range []int{1, 2, 4} {
			out = append(out, config.Config{Alg: alg, Threads: t})
		}
	}
	out = append(out, config.Config{Alg: config.HTM, Threads: 4, Budget: 4, Policy: htm.PolicyHalve})
	return out
}

func trainFor(cfgs []config.Config) *cf.Matrix {
	prof := machine.Profile{Name: "t", Cores: 4, HWThreads: 4, Sockets: 1, HasHTM: true,
		ThreadCounts: []int{1, 2, 4}, StaticPower: 10, PowerPerThread: 5}
	gen := &perfmodel.Generator{Machine: prof, Seed: 3}
	return gen.Matrix(gen.Workloads(40), cfgs, perfmodel.Throughput)
}

// TestRuntimeOptimizesAndReacts drives the full runtime with a live workload
// whose cost structure flips mid-run; the Monitor must detect the change and
// trigger a second optimization phase.
func TestRuntimeOptimizesAndReacts(t *testing.T) {
	cfgs := testConfigs()
	rt, err := core.New(core.Options{
		HeapWords:       1 << 16,
		MaxThreads:      4,
		Configs:         cfgs,
		TrainKPI:        trainFor(cfgs),
		KPI:             core.Throughput,
		SamplePeriod:    40 * time.Millisecond,
		SettleTime:      20 * time.Millisecond,
		MaxExplorations: 5,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	words := rt.Heap().MustAlloc(256)
	var heavy atomic.Bool
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := uint64(id + 1)
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				slot := tm.Addr(rng % 256)
				if heavy.Load() {
					slot = tm.Addr(rng % 4) // heavy contention
				}
				rt.Atomic(id, func(tx tm.Txn) {
					v := tx.Load(words + slot)
					tx.Store(words+slot, v+1)
					if heavy.Load() {
						for i := tm.Addr(0); i < 32; i++ {
							_ = tx.Load(words + 128 + i)
						}
					}
				})
			}
		}(w)
	}

	rt.Start()
	// Wait for the initial optimization phase to complete (generously:
	// the test may share the machine with parallel benchmark load).
	deadline := time.Now().Add(10 * time.Second)
	for rt.Phases() < 1 || rt.Exploring() {
		if time.Now().After(deadline) {
			t.Fatalf("no initial optimization phase ran")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(400 * time.Millisecond) // steady-state baseline for CUSUM
	phase1 := rt.Phases()
	heavy.Store(true) // drastic workload change
	deadline = time.Now().Add(10 * time.Second)
	for rt.Phases() <= phase1 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	phase2 := rt.Phases()
	rt.Stop()

	// Unpark workers before joining.
	cfg := rt.Pool.Config()
	cfg.Threads = 4
	if err := rt.Pool.Reconfigure(cfg); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()

	if phase2 <= phase1 {
		t.Errorf("workload change not detected: phases before=%d after=%d", phase1, phase2)
		for _, pt := range rt.Timeline() {
			t.Logf("t=%6.2fs kpi=%12.0f cfg=%-12s exploring=%v", pt.At.Seconds(), pt.KPI, pt.Config, pt.Exploring)
		}
	}
	if got := len(rt.Timeline()); got == 0 {
		t.Error("no timeline recorded")
	}
}

// TestVirtualClock covers the manual clock used by the deterministic
// harness.
func TestVirtualClock(t *testing.T) {
	base := time.Unix(100, 0)
	c := core.NewVirtualClock(base)
	if !c.Now().Equal(base) {
		t.Fatalf("Now = %v, want %v", c.Now(), base)
	}
	c.Advance(2 * time.Second)
	c.Sleep(time.Second)  // Sleep advances without blocking
	c.Advance(-time.Hour) // negative advances are ignored
	if got := c.Now().Sub(base); got != 3*time.Second {
		t.Fatalf("advanced %v, want 3s", got)
	}
}

// TestExploreSyncIsDeterministic drives the synchronous exploration API
// with a pure measure function twice and requires identical explored
// sequences and installed winners.
func TestExploreSyncIsDeterministic(t *testing.T) {
	cfgs := testConfigs()
	train := trainFor(cfgs)
	kpiOf := func(c config.Config) float64 {
		// A synthetic preference: NOrec scales best, HTM worst.
		base := map[config.AlgID]float64{config.TL2: 2, config.TinySTM: 3, config.NOrec: 5, config.HTM: 1}[c.Alg]
		return base * float64(c.Threads)
	}
	run := func() ([]config.Config, config.Config) {
		rt, err := core.New(core.Options{
			HeapWords: 1 << 12, Configs: cfgs, TrainKPI: train, Seed: 11,
			Clock: core.NewVirtualClock(time.Time{}),
		})
		if err != nil {
			t.Fatal(err)
		}
		var explored []config.Config
		rt.ExploreSync(func(c config.Config) float64 {
			explored = append(explored, c)
			return kpiOf(c)
		})
		return explored, rt.Pool.Config()
	}
	e1, w1 := run()
	e2, w2 := run()
	if len(e1) == 0 {
		t.Fatal("nothing explored")
	}
	if w1 != w2 {
		t.Fatalf("winners differ: %v vs %v", w1, w2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("exploration lengths differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("exploration step %d differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	// The winner must be the best explored configuration under kpiOf.
	best := e1[0]
	for _, c := range e1 {
		if kpiOf(c) > kpiOf(best) {
			best = c
		}
	}
	if w1 != best {
		t.Fatalf("installed %v, but best explored was %v", w1, best)
	}
	// Observe/ResetMonitor round-trip: a stable stream raises no alarm.
	rt, err := core.New(core.Options{HeapWords: 1 << 12, Configs: cfgs, TrainKPI: train, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rt.ResetMonitor(100)
	for i := 0; i < 50; i++ {
		if rt.Observe(100) {
			t.Fatal("alarm on a flat KPI stream")
		}
	}
	if len(rt.Configs()) != len(cfgs) {
		t.Fatalf("Configs() returned %d entries", len(rt.Configs()))
	}
}
