// Package perfmodel generates synthetic-but-realistic KPI surfaces for the
// trace-driven experiments (Figs. 4–7 of the paper). The authors replayed
// traces of real executions of ~300 workloads across their configuration
// spaces; those traces do not exist here, so this package substitutes an
// analytic TM performance model that preserves the structure the recommender
// exploits:
//
//   - workloads fall into archetypes (HTM-friendly short transactions,
//     read-dominated long transactions, contended writers, NUMA-averse,
//     service-style) whose optimal configurations differ along every tuned
//     dimension;
//   - absolute KPI scales differ across workloads by orders of magnitude
//     (the heterogeneity that motivates rating distillation);
//   - per-(workload, configuration) measurement noise is small,
//     multiplicative and deterministic, so experiments are reproducible.
//
// The per-algorithm cost model mirrors the published trade-offs: TL2 pays
// commit-time validation proportional to the read set; TinySTM reads more
// cheaply and survives long read-only transactions (timestamp extension);
// NOrec has the cheapest accesses but serializes writer commits on its
// global lock; SwissTM's mixed detection and contention manager shine on
// long mixed workloads; simulated HTM is nearly free per access but capacity
// overflows push it to a serializing fallback, modulated by the retry budget
// and capacity policy.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/machine"
)

// KPIKind selects which key performance indicator the model reports — the
// three KPIs of §6.1.
type KPIKind int

const (
	// Throughput is committed transactions per second (maximize).
	Throughput KPIKind = iota
	// ExecTime is the time to complete a fixed batch (minimize).
	ExecTime
	// EDP is the energy-delay product of the fixed batch (minimize).
	EDP
)

// String names the KPI.
func (k KPIKind) String() string {
	switch k {
	case Throughput:
		return "throughput"
	case ExecTime:
		return "exec-time"
	case EDP:
		return "edp"
	}
	return "?"
}

// HigherIsBetter reports the KPI's orientation.
func (k KPIKind) HigherIsBetter() bool { return k == Throughput }

// Archetype labels a workload family.
type Archetype int

const (
	// ShortTxScalable: data-structure-like tiny transactions, fits HTM.
	ShortTxScalable Archetype = iota
	// ShortTxContended: tiny transactions with hot spots.
	ShortTxContended
	// LongReadMostly: genome/vacation-like long read-dominated.
	LongReadMostly
	// LongWriteHeavy: labyrinth/yada-like bulk writers.
	LongWriteHeavy
	// ServiceStyle: memcached-like, much non-transactional work.
	ServiceStyle
	// OLTPStyle: tpcc-like mixes.
	OLTPStyle

	numArchetypes = int(OLTPStyle) + 1
)

// String names the archetype.
func (a Archetype) String() string {
	switch a {
	case ShortTxScalable:
		return "short-scalable"
	case ShortTxContended:
		return "short-contended"
	case LongReadMostly:
		return "long-read-mostly"
	case LongWriteHeavy:
		return "long-write-heavy"
	case ServiceStyle:
		return "service"
	case OLTPStyle:
		return "oltp"
	}
	return "?"
}

// Workload is one synthetic workload: the parameters of the analytic model.
// The fields double as the "workload characterization" features consumed by
// the ML baselines of Fig. 7.
type Workload struct {
	ID        int
	Archetype Archetype

	// TxWork is the intrinsic in-transaction computation (abstract µs).
	TxWork float64
	// NonTxWork is the computation between transactions (abstract µs).
	NonTxWork float64
	// ReadSet and WriteSet are mean accesses per transaction.
	ReadSet, WriteSet float64
	// ReadOnlyFrac is the fraction of read-only transactions.
	ReadOnlyFrac float64
	// Contention is the conflict intensity coefficient (0..1).
	Contention float64
	// HTMFit is the fraction of transactions whose footprint fits the
	// speculative capacity.
	HTMFit float64
	// ParallelFrac is the Amdahl parallel fraction of the application.
	ParallelFrac float64
	// MemBound is the memory-boundedness (NUMA sensitivity, 0..1).
	MemBound float64
	// Scale is the workload-specific KPI magnitude multiplier; it spans
	// orders of magnitude across workloads (log-uniform), producing the
	// scale heterogeneity of §5.1.
	Scale float64

	seed uint64
}

// Generator produces workloads and their KPI surfaces on one machine.
type Generator struct {
	Machine machine.Profile
	Seed    uint64
}

// FamilySize is the number of workload variants generated per application
// family. The paper's ~300 workloads come from 15 applications exercised
// with different inputs and parameters; mirroring that structure (rather
// than sampling 300 unrelated parameter vectors) is what gives CF the
// cross-workload similarity it mines.
const FamilySize = 10

// Workloads samples n workloads organized in application families: each
// family fixes a base parameter vector drawn from its archetype, and its
// variants perturb the parameters (different inputs) and the KPI scale.
func (g *Generator) Workloads(n int) []Workload {
	out := make([]Workload, n)
	nFamilies := (n + FamilySize - 1) / FamilySize
	for f := 0; f < nFamilies; f++ {
		base := g.sample(f*FamilySize, Archetype(f%numArchetypes))
		for v := 0; v < FamilySize; v++ {
			id := f*FamilySize + v
			if id >= n {
				break
			}
			out[id] = g.variant(base, id, v)
		}
	}
	return out
}

// variant derives workload variant v of a family from its base parameters:
// inputs perturb the workload moderately and shift its absolute scale.
func (g *Generator) variant(base Workload, id, v int) Workload {
	w := base
	w.ID = id
	r := newRNG(g.Seed ^ uint64(id)*0xD1B54A32D192ED03 ^ 0x94D049BB133111EB)
	w.seed = r.next()
	if v == 0 {
		return w
	}
	perturb := func(x, frac float64) float64 { return x * r.uniform(1-frac, 1+frac) }
	clamp01 := func(x float64) float64 { return math.Min(1, math.Max(0, x)) }
	w.TxWork = perturb(w.TxWork, 0.35)
	w.NonTxWork = perturb(w.NonTxWork, 0.35)
	w.ReadSet = perturb(w.ReadSet, 0.3)
	w.WriteSet = perturb(w.WriteSet, 0.3)
	w.ReadOnlyFrac = clamp01(perturb(w.ReadOnlyFrac+0.01, 0.25))
	w.Contention = perturb(w.Contention, 0.4)
	w.HTMFit = clamp01(perturb(w.HTMFit+0.01, 0.15))
	w.ParallelFrac = clamp01(perturb(w.ParallelFrac, 0.05))
	w.MemBound = clamp01(perturb(w.MemBound+0.01, 0.3))
	w.Scale = perturb(w.Scale, 0.5) * r.logUniform(0.5, 2)
	return w
}

// sample draws one workload's parameters from its archetype's ranges.
func (g *Generator) sample(id int, a Archetype) Workload {
	r := newRNG(g.Seed ^ uint64(id)*0x9E3779B97F4A7C15 ^ 0xD1B54A32D192ED03)
	w := Workload{ID: id, Archetype: a, seed: r.next()}
	switch a {
	case ShortTxScalable:
		w.TxWork = r.logUniform(0.05, 0.4)
		w.NonTxWork = r.logUniform(0.02, 0.2)
		w.ReadSet = r.uniform(4, 24)
		w.WriteSet = r.uniform(1, 5)
		w.ReadOnlyFrac = r.uniform(0.4, 0.9)
		w.Contention = r.uniform(0.002, 0.03)
		w.HTMFit = r.uniform(0.93, 1.0)
		w.ParallelFrac = r.uniform(0.95, 1.0)
		w.MemBound = r.uniform(0.0, 0.3)
	case ShortTxContended:
		w.TxWork = r.logUniform(0.05, 0.5)
		w.NonTxWork = r.logUniform(0.02, 0.3)
		w.ReadSet = r.uniform(4, 30)
		w.WriteSet = r.uniform(2, 10)
		w.ReadOnlyFrac = r.uniform(0.0, 0.4)
		w.Contention = r.uniform(0.08, 0.4)
		w.HTMFit = r.uniform(0.85, 1.0)
		w.ParallelFrac = r.uniform(0.8, 0.98)
		w.MemBound = r.uniform(0.0, 0.4)
	case LongReadMostly:
		w.TxWork = r.logUniform(1, 15)
		w.NonTxWork = r.logUniform(0.1, 2)
		w.ReadSet = r.uniform(80, 600)
		w.WriteSet = r.uniform(2, 25)
		w.ReadOnlyFrac = r.uniform(0.6, 0.95)
		w.Contention = r.uniform(0.005, 0.08)
		w.HTMFit = r.uniform(0.0, 0.35)
		w.ParallelFrac = r.uniform(0.9, 1.0)
		w.MemBound = r.uniform(0.2, 0.7)
	case LongWriteHeavy:
		w.TxWork = r.logUniform(2, 30)
		w.NonTxWork = r.logUniform(0.1, 1)
		w.ReadSet = r.uniform(50, 300)
		w.WriteSet = r.uniform(40, 250)
		w.ReadOnlyFrac = r.uniform(0.0, 0.2)
		w.Contention = r.uniform(0.05, 0.35)
		w.HTMFit = r.uniform(0.0, 0.1)
		w.ParallelFrac = r.uniform(0.6, 0.95)
		w.MemBound = r.uniform(0.3, 0.8)
	case ServiceStyle:
		w.TxWork = r.logUniform(0.03, 0.2)
		w.NonTxWork = r.logUniform(0.3, 3)
		w.ReadSet = r.uniform(3, 15)
		w.WriteSet = r.uniform(1, 6)
		w.ReadOnlyFrac = r.uniform(0.5, 0.95)
		w.Contention = r.uniform(0.001, 0.05)
		w.HTMFit = r.uniform(0.9, 1.0)
		w.ParallelFrac = r.uniform(0.97, 1.0)
		w.MemBound = r.uniform(0.1, 0.5)
	case OLTPStyle:
		w.TxWork = r.logUniform(0.5, 6)
		w.NonTxWork = r.logUniform(0.05, 0.5)
		w.ReadSet = r.uniform(30, 200)
		w.WriteSet = r.uniform(10, 80)
		w.ReadOnlyFrac = r.uniform(0.05, 0.5)
		w.Contention = r.uniform(0.02, 0.2)
		w.HTMFit = r.uniform(0.1, 0.7)
		w.ParallelFrac = r.uniform(0.8, 0.99)
		w.MemBound = r.uniform(0.2, 0.6)
	}
	w.Scale = r.logUniform(0.01, 100) // 4 orders of magnitude across workloads
	return w
}

// algCosts are the per-algorithm access/commit cost coefficients (abstract
// time units per access).
type algCosts struct {
	read, write      float64
	commitPerRead    float64
	commitPerWrite   float64
	commitFixed      float64
	conflictFactor   float64
	serialCommitFrac float64 // fraction of commit work under a global lock
}

func costsFor(alg config.AlgID) algCosts {
	switch alg {
	case config.TL2:
		return algCosts{read: 0.012, write: 0.008, commitPerRead: 0.004, commitPerWrite: 0.018, commitFixed: 0.03, conflictFactor: 1.0}
	case config.TinySTM:
		return algCosts{read: 0.009, write: 0.014, commitPerRead: 0.003, commitPerWrite: 0.010, commitFixed: 0.03, conflictFactor: 0.8}
	case config.NOrec:
		return algCosts{read: 0.006, write: 0.005, commitPerRead: 0.002, commitPerWrite: 0.012, commitFixed: 0.02, conflictFactor: 0.65, serialCommitFrac: 1.0}
	case config.SwissTM:
		return algCosts{read: 0.010, write: 0.012, commitPerRead: 0.003, commitPerWrite: 0.012, commitFixed: 0.035, conflictFactor: 0.55}
	case config.HTM:
		return algCosts{read: 0.001, write: 0.001, commitPerWrite: 0.0, commitFixed: 0.015, conflictFactor: 1.4}
	case config.Hybrid:
		return algCosts{read: 0.002, write: 0.002, commitPerWrite: 0.002, commitFixed: 0.02, conflictFactor: 1.6, serialCommitFrac: 1.0}
	case config.GlobalLock:
		return algCosts{commitFixed: 0.005}
	}
	return algCosts{}
}

// KPI returns the deterministic modeled KPI of workload w under cfg.
func (g *Generator) KPI(w Workload, cfg config.Config, kind KPIKind) float64 {
	x, util := g.throughput(w, cfg)
	noise := kpiNoise(w.seed, cfg, g.Seed)
	x *= noise
	switch kind {
	case Throughput:
		return x * w.Scale
	case ExecTime:
		// Time to push a fixed batch of 1e6 transactions, in seconds;
		// Scale shifts the batch size across workloads.
		return 1e6 / (x * w.Scale)
	case EDP:
		t := 1e6 / (x * w.Scale)
		p := g.Machine.StaticPower + g.Machine.PowerPerThread*float64(cfg.Threads)*util
		return p * t * t
	}
	return math.NaN()
}

// throughput returns (transactions per abstract second, useful-work
// utilization) for the configuration.
func (g *Generator) throughput(w Workload, cfg config.Config) (float64, float64) {
	t := float64(cfg.Threads)
	c := costsFor(cfg.Alg)
	m := g.Machine

	// Per-attempt transaction cost (abstract µs).
	writerFrac := 1 - w.ReadOnlyFrac
	accessCost := w.ReadSet*c.read + w.WriteSet*c.write*writerFrac
	commitCost := c.commitFixed + w.ReadSet*c.commitPerRead + w.WriteSet*c.commitPerWrite*writerFrac
	txCost := w.TxWork + accessCost + commitCost

	// NUMA penalty: crossing sockets inflates every shared access.
	perSocket := float64(m.HWThreads) / float64(m.Sockets)
	if t > perSocket {
		cross := (t - perSocket) / t
		txCost *= 1 + w.MemBound*2.2*cross
	}
	// Hyper-threading: threads beyond physical cores contribute less.
	effThreads := t
	if t > float64(m.Cores) && m.Cores < m.HWThreads {
		effThreads = float64(m.Cores) + (t-float64(m.Cores))*0.55
	}

	// Conflict probability per attempt grows with concurrency and
	// footprint.
	footprint := (w.WriteSet + 0.15*w.ReadSet) / 50
	pc := 1 - math.Exp(-w.Contention*c.conflictFactor*(t-1)*footprint)
	if pc > 0.95 {
		pc = 0.95
	}
	pc *= writerFrac // read-only transactions rarely abort

	serialFrac := 0.0
	wastedPerTx := 0.0
	switch {
	case cfg.Alg == config.GlobalLock:
		serialFrac = txCost / (txCost + w.NonTxWork)
		pc = 0
	case cfg.Alg == config.HTM || cfg.Alg == config.Hybrid:
		budget := cfg.Budget
		if budget < 1 {
			budget = 1
		}
		// Transactions that overflow capacity always fall back after
		// burning policy-dependent attempts.
		var wastedCap float64
		switch cfg.Policy {
		case htm.PolicyGiveUp:
			wastedCap = 1
		case htm.PolicyHalve:
			wastedCap = math.Log2(float64(budget)) + 1
		default: // decrease
			wastedCap = float64(budget)
		}
		if wastedCap > float64(budget) {
			wastedCap = float64(budget)
		}
		overflow := 1 - w.HTMFit
		// Conflicting transactions exhaust the budget with prob pc^budget.
		conflictFallback := math.Pow(pc, float64(budget))
		fallbackFrac := overflow + (1-overflow)*conflictFallback
		// Fallback runs serialized; its execution is uninstrumented.
		glCost := w.TxWork + 0.004*(w.ReadSet+w.WriteSet)
		serialFrac = fallbackFrac * glCost / (txCost + w.NonTxWork)
		wastedPerTx = overflow*wastedCap*txCost*0.6 +
			(1-overflow)*(pc/(1-pc))*txCost*0.5
	default:
		// STM: aborted attempts cost roughly half a transaction.
		wastedPerTx = (pc / (1 - pc)) * txCost * 0.55
		// NOrec/Hybrid writer commits serialize on the global lock.
		if c.serialCommitFrac > 0 {
			serialFrac = writerFrac * commitCost * c.serialCommitFrac / (txCost + w.NonTxWork)
		}
	}

	perTx := txCost + w.NonTxWork + wastedPerTx

	// Amdahl-style scaling over the application's parallel fraction plus
	// the algorithm-induced serial fraction.
	s := (1 - w.ParallelFrac) + serialFrac
	if s > 1 {
		s = 1
	}
	speedup := 1 / (s + (1-s)/effThreads)
	x := speedup / perTx * 1e6 / 1e6 // transactions per abstract µs → Mtx/s scale
	x *= 1e6                         // express as tx/s

	util := (txCost + w.NonTxWork) / perTx
	return x, util
}

// Features returns the 17-feature workload characterization consumed by the
// ML baselines (Fig. 7): the measurable workload properties plus contention
// -management-relevant observables, with mild multiplicative observation
// noise (profiling is never exact).
func (w Workload) Features() []float64 {
	r := newRNG(w.seed ^ 0xA5A5A5A5DEADBEEF)
	// Profiled workload characteristics carry substantial observation
	// noise (±15 %): contention or capacity-fit rates measured over a
	// short profiling window are far from exact.
	noisy := func(v float64) float64 { return v * (1 + 0.15*(r.uniform(0, 2)-1)) }
	rwRatio := w.ReadSet / math.Max(w.WriteSet, 0.5)
	txLen := w.TxWork + 0.01*(w.ReadSet+w.WriteSet)
	return []float64{
		noisy(txLen),          // 1 transaction duration
		noisy(w.NonTxWork),    // 2 non-transactional work
		noisy(w.ReadSet),      // 3 read-set size
		noisy(w.WriteSet),     // 4 write-set size
		noisy(rwRatio),        // 5 read/write ratio
		noisy(w.ReadOnlyFrac), // 6 read-only fraction
		noisy(w.Contention),   // 7 data contention
		noisy(w.HTMFit),       // 8 capacity-fit fraction
		noisy(1 - w.HTMFit),   // 9 capacity-abort rate proxy
		noisy(w.ParallelFrac), // 10 parallel fraction
		noisy(w.MemBound),     // 11 memory-boundedness
		noisy(txLen / (txLen + w.NonTxWork + 1e-9)),         // 12 tx time share
		noisy(w.Contention * w.WriteSet),                    // 13 write contention product
		noisy(w.ReadSet + w.WriteSet),                       // 14 total footprint
		noisy(w.Contention * (1 - w.ReadOnlyFrac)),          // 15 writer conflict pressure
		noisy(w.WriteSet / (w.ReadSet + w.WriteSet + 1e-9)), // 16 write share
		noisy(txLen * w.Contention),                         // 17 conflict window
	}
}

// Matrix builds the full ground-truth KPI matrix of the given workloads over
// the machine's configuration space.
func (g *Generator) Matrix(ws []Workload, cfgs []config.Config, kind KPIKind) *cf.Matrix {
	m := cf.NewMatrix(len(ws), len(cfgs))
	for u, w := range ws {
		for i, cfg := range cfgs {
			m.Data[u][i] = g.KPI(w, cfg, kind)
		}
	}
	return m
}

// kpiNoise returns the deterministic multiplicative measurement noise for a
// (workload, configuration) pair: lognormal with σ ≈ 3 %.
func kpiNoise(wseed uint64, cfg config.Config, gseed uint64) float64 {
	r := newRNG(wseed ^ uint64(cfg.Key())*0xBF58476D1CE4E5B9 ^ gseed)
	// Approximate a standard normal from 4 uniforms (CLT is plenty here).
	z := r.uniform(0, 1) + r.uniform(0, 1) + r.uniform(0, 1) + r.uniform(0, 1)
	z = (z - 2) * math.Sqrt(3)
	return math.Exp(0.03 * z)
}

// --- deterministic PRNG --------------------------------------------------------

type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x106689D45497FDB5
	}
	r := &rng{s: seed}
	r.next()
	r.next()
	return r
}

func (r *rng) next() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545F4914F6CDD1D
}

func (r *rng) uniform(lo, hi float64) float64 {
	u := float64(r.next()>>11) / float64(1<<53)
	return lo + u*(hi-lo)
}

func (r *rng) logUniform(lo, hi float64) float64 {
	if lo <= 0 || hi <= lo {
		panic(fmt.Sprintf("perfmodel: bad logUniform range [%g,%g]", lo, hi))
	}
	return math.Exp(r.uniform(math.Log(lo), math.Log(hi)))
}
