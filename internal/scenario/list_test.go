package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestListGolden pins `proteusbench list` output to a golden file so the
// registry, its parameter schemas and the docs cannot drift silently.
// Regenerate with: go test ./internal/scenario -run TestListGolden -update
func TestListGolden(t *testing.T) {
	var buf bytes.Buffer
	RenderList(&buf, 8)
	golden := filepath.Join("testdata", "list.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("list output drifted from %s — if intentional, rerun with -update.\n--- got\n%s\n--- want\n%s",
			golden, buf.String(), want)
	}
}

// TestListMentionsEveryScenario double-checks the acceptance criterion
// independently of the golden file.
func TestListMentionsEveryScenario(t *testing.T) {
	var buf bytes.Buffer
	RenderList(&buf, 8)
	out := buf.String()
	for _, name := range Names() {
		if !strings.Contains(out, name) {
			t.Errorf("list output does not mention scenario %q", name)
		}
	}
	for _, family := range Families() {
		if !strings.Contains(out, "["+family+"]") {
			t.Errorf("list output does not mention family %q", family)
		}
	}
}

func TestMarkdownTable(t *testing.T) {
	var buf bytes.Buffer
	MarkdownTable(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(All())+2 {
		t.Fatalf("markdown table has %d lines for %d scenarios", len(lines), len(All()))
	}
}
