// Package energy is the RAPL substitute: a package-level power model that
// converts observed execution behaviour (active threads, commit/abort rates,
// wall time) into energy (Joules) and the EDP metric the paper optimizes.
//
// The paper reads Intel RAPL counters on Machine A; no such counters exist
// in this environment, so energy is modeled as
//
//	P = Pstatic + Pthread · t · u
//
// where t is the number of active threads and u the useful-work utilization
// (committed work over total attempted work). Wasted (aborted) work still
// burns dynamic power at a configurable fraction. Only the *relative*
// ordering of configurations matters for the tuner, and this model preserves
// the two effects the paper relies on: more threads draw more power, and
// abort-heavy configurations waste energy without adding throughput.
package energy

import "time"

// Model is a machine power model.
type Model struct {
	// StaticPower is the always-on package power in watts.
	StaticPower float64
	// PowerPerThread is the dynamic power of one fully busy thread.
	PowerPerThread float64
	// AbortedWorkFactor scales the dynamic power of work that ends up
	// aborted (speculative execution still burns energy; a value of 1
	// means aborted work costs the same as committed work).
	AbortedWorkFactor float64
}

// NewModel builds a power model from machine parameters with the default
// aborted-work factor of 1 (speculation burns full power).
func NewModel(staticPower, powerPerThread float64) Model {
	return Model{StaticPower: staticPower, PowerPerThread: powerPerThread, AbortedWorkFactor: 1}
}

// Sample is one observation window of an execution.
type Sample struct {
	// Elapsed is the wall-clock duration of the window.
	Elapsed time.Duration
	// Threads is the number of active worker threads.
	Threads int
	// Commits and Aborts are the transaction counts in the window.
	Commits, Aborts uint64
}

// Power returns the modeled average power draw (watts) for the sample.
func (m Model) Power(s Sample) float64 {
	total := float64(s.Commits + s.Aborts)
	if total == 0 {
		return m.StaticPower
	}
	useful := float64(s.Commits) / total
	wasted := float64(s.Aborts) / total
	util := useful + m.AbortedWorkFactor*wasted
	return m.StaticPower + m.PowerPerThread*float64(s.Threads)*util
}

// Energy returns the modeled energy (Joules) consumed during the sample.
func (m Model) Energy(s Sample) float64 {
	return m.Power(s) * s.Elapsed.Seconds()
}

// EDP returns the Energy-Delay Product of the sample (J·s), the energy
// -efficiency KPI of the paper (lower is better).
func (m Model) EDP(s Sample) float64 {
	return m.Energy(s) * s.Elapsed.Seconds()
}

// ThroughputPerJoule returns committed transactions per Joule (higher is
// better), the KPI of Fig. 1a.
func (m Model) ThroughputPerJoule(s Sample) float64 {
	e := m.Energy(s)
	if e == 0 {
		return 0
	}
	return float64(s.Commits) / e
}
