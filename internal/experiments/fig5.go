package experiments

import (
	"fmt"
	"io"

	"repro/internal/cf"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/rectm"
	"repro/internal/smbo"
)

// Fig5Result reproduces Fig. 5: the Controller's exploration policies. EI is
// compared against Greedy, Random and Variance on two (machine, KPI) pairs:
// EDP on Machine A and execution time on Machine B.
type Fig5Result struct {
	Budgets  []int
	Policies []string
	// MDFOEDPA is Fig. 5a: MDFO vs exploration budget (EDP, Machine A).
	MDFOEDPA [][]float64
	// CDFAfter5 is Fig. 5b: the DFO distribution after 5 explorations
	// (EDP, Machine A), one CDF per policy.
	CDFAfter5 [][]metrics.CDFPoint
	// MAPEExecB is Fig. 5c: MAPE vs exploration budget (exec time, B).
	MAPEExecB [][]float64
	// MDFOExecB is Fig. 5d: MDFO vs exploration budget (exec time, B).
	MDFOExecB [][]float64
}

var fig5Policies = []smbo.Policy{smbo.EI, smbo.Greedy, smbo.Random, smbo.Variance}

// Fig5 runs the experiment.
func Fig5(scale Scale) (Fig5Result, error) {
	budgets := []int{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	res := Fig5Result{Budgets: budgets}
	for _, p := range fig5Policies {
		res.Policies = append(res.Policies, p.String())
	}

	// Panel a+b: EDP on Machine A.
	mdfoA, _, cdfA, err := fig5Sweep(machine.A(), perfmodel.EDP, scale, budgets, 5)
	if err != nil {
		return res, err
	}
	res.MDFOEDPA = mdfoA
	res.CDFAfter5 = cdfA

	// Panel c+d: exec time on Machine B.
	mdfoB, mapeB, _, err := fig5Sweep(machine.B(), perfmodel.ExecTime, scale, budgets, -1)
	if err != nil {
		return res, err
	}
	res.MDFOExecB = mdfoB
	res.MAPEExecB = mapeB
	return res, nil
}

// fig5Sweep runs every policy across exploration budgets on one
// (machine, KPI) pair, returning MDFO[policy][budget], MAPE[policy][budget]
// and, when cdfBudget ≥ 0, the DFO CDF at that budget.
func fig5Sweep(prof machine.Profile, kind perfmodel.KPIKind, scale Scale, budgets []int, cdfBudget int) (mdfo, mape [][]float64, cdfs [][]metrics.CDFPoint, err error) {
	_, ws, truth := truthFor(prof, scale.workloadCount(), kind, 777)
	train, test, _, _ := splitRows(truth, ws, 0.3)
	rec, err := rectm.Train(train, kind.HigherIsBetter(), rectm.Options{
		Predictor: func() cf.Predictor { return &cf.KNN{K: 10, Sim: cf.Cosine} },
		Learners:  10,
		Seed:      13,
	})
	if err != nil {
		return nil, nil, nil, fmt.Errorf("fig5: %w", err)
	}
	hib := kind.HigherIsBetter()
	sweep := budgets
	if cdfBudget >= 0 {
		found := false
		for _, b := range budgets {
			if b == cdfBudget {
				found = true
			}
		}
		if !found {
			sweep = append(append([]int{}, budgets...), cdfBudget)
		}
	}
	for _, policy := range fig5Policies {
		var mdfoRow, mapeRow []float64
		var cdf []metrics.CDFPoint
		for _, budget := range sweep {
			var dfos, mapes []float64
			for u := 0; u < test.Rows; u++ {
				row := test.Data[u]
				opt := rec.Optimize(func(i int) float64 { return row[i] }, nil, smbo.Options{
					Policy:          policy,
					Stop:            smbo.StopNone,
					MaxExplorations: budget,
					NoFinalCheck:    true,
					Seed:            uint64(u)*31 + uint64(budget),
				})
				dfos = append(dfos, metrics.DFO(row, opt.Best, hib))
				// MAPE of the model's predictions given the explored samples.
				known := make([]float64, len(row))
				for i := range known {
					known[i] = cf.Missing
				}
				for _, i := range opt.Explored {
					known[i] = row[i]
				}
				pred := rec.PredictKPI(known)
				mapes = append(mapes, metrics.MAPE(row, pred))
			}
			if budget == cdfBudget {
				cdf = metrics.CDF(dfos)
			}
			if len(mdfoRow) < len(budgets) {
				mdfoRow = append(mdfoRow, metrics.Mean(dfos))
				mapeRow = append(mapeRow, metrics.Mean(mapes))
			}
		}
		mdfo = append(mdfo, mdfoRow)
		mape = append(mape, mapeRow)
		cdfs = append(cdfs, cdf)
	}
	return mdfo, mape, cdfs, nil
}

// Print renders the four panels.
func (r Fig5Result) Print(w io.Writer) {
	header(w, "Figure 5: Controller exploration policies")
	printPolicyTable(w, "Fig. 5a — MDFO vs explorations (EDP, Machine A)", r.Policies, r.Budgets, r.MDFOEDPA)
	fmt.Fprintf(w, "\nFig. 5b — DFO after 5 explorations (EDP, Machine A): selected percentiles\n")
	fmt.Fprintf(w, "%-10s%12s%12s%12s\n", "policy", "p50", "p80", "p95")
	for pi, p := range r.Policies {
		xs := make([]float64, len(r.CDFAfter5[pi]))
		for i, pt := range r.CDFAfter5[pi] {
			xs[i] = pt.X
		}
		fmt.Fprintf(w, "%-10s%12.3f%12.3f%12.3f\n", p,
			metrics.Percentile(xs, 50), metrics.Percentile(xs, 80), metrics.Percentile(xs, 95))
	}
	printPolicyTable(w, "Fig. 5c — MAPE vs explorations (exec time, Machine B)", r.Policies, r.Budgets, r.MAPEExecB)
	printPolicyTable(w, "Fig. 5d — MDFO vs explorations (exec time, Machine B)", r.Policies, r.Budgets, r.MDFOExecB)
	fmt.Fprintln(w, "\nShape check: EI dominates MDFO; Variance has the best MAPE but poor MDFO;")
	fmt.Fprintln(w, "EI reaches 5% MDFO in a fraction of Random's explorations.")
}

func printPolicyTable(w io.Writer, title string, policies []string, budgets []int, data [][]float64) {
	fmt.Fprintf(w, "\n%s\n%-10s", title, "policy")
	for _, b := range budgets {
		fmt.Fprintf(w, "%8d", b)
	}
	fmt.Fprintln(w)
	for pi, p := range policies {
		fmt.Fprintf(w, "%-10s", p)
		for bi := range budgets {
			fmt.Fprintf(w, "%8.3f", data[pi][bi])
		}
		fmt.Fprintln(w)
	}
}
