package workloads

import (
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/polytm"
	"repro/internal/tm"
)

// TestServiceShardedConcurrent drives the sharded workload on real
// goroutines so the in-workload fence protocol (ordered acquire,
// abort-all, apply+release) runs under genuine contention, then checks
// the routing invariant and fence cleanliness via Verify. The -race CI
// run of this package makes it a data-race probe too.
func TestServiceShardedConcurrent(t *testing.T) {
	wl := &ServiceSharded{Shards: 4, KeyRange: 1 << 10, Span: 32, BatchEvery: 8, BatchKeys: 6}
	pool := polytm.New(1<<20, 4, config.Config{Alg: config.TL2, Threads: 4})
	if err := wl.Setup(pool.Heap(), NewRand(7)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	d := &Driver{Workload: wl, Runner: pool, MaxThreads: 4, Seed: 7}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond)
	d.Stop()
	if d.Ops() == 0 {
		t.Fatal("no operations completed")
	}
	if err := wl.Verify(pool.Heap()); err != nil {
		t.Fatalf("post-run invariant: %v", err)
	}
}

// TestServiceShardedRoutingInvariant checks the serial path too: after a
// deterministic run every key sits on its owning shard (Verify) and the
// per-shard stores are non-trivially populated.
func TestServiceShardedRoutingInvariant(t *testing.T) {
	wl := &ServiceSharded{Shards: 3, KeyRange: 512, BatchEvery: 4, BatchKeys: 5}
	pool := polytm.New(1<<20, 2, config.Config{Alg: config.NOrec, Threads: 2})
	if err := wl.Setup(pool.Heap(), NewRand(3)); err != nil {
		t.Fatalf("Setup: %v", err)
	}
	sd := NewSerialDriver(wl, pool, 2, 3)
	sd.Run(2000)
	if err := wl.Verify(pool.Heap()); err != nil {
		t.Fatalf("post-run invariant: %v", err)
	}
	seq := NewBareRunner(seqAlg(), pool.Heap(), 1)
	total := 0
	for i, set := range wl.sets {
		n := 0
		seq.Atomic(0, func(tx tm.Txn) { n = set.Size(tx) })
		if n == 0 {
			t.Errorf("shard %d store is empty after 2000 ops", i)
		}
		total += n
	}
	if total == 0 {
		t.Fatal("all shard stores empty")
	}
}
