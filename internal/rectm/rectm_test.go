package rectm_test

import (
	"math"
	"testing"

	"repro/internal/cf"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/rectm"
	"repro/internal/smbo"
)

// buildTruth returns (workloads, configs, full KPI matrix) on Machine A.
func buildTruth(t *testing.T, n int, kind perfmodel.KPIKind) (*perfmodel.Generator, *cf.Matrix, int) {
	t.Helper()
	gen := &perfmodel.Generator{Machine: machine.A(), Seed: 12345}
	ws := gen.Workloads(n)
	cfgs := gen.Machine.Configs()
	truth := gen.Matrix(ws, cfgs, kind)
	return gen, truth, len(cfgs)
}

func splitRows(m *cf.Matrix, trainFrac float64) (train, test *cf.Matrix) {
	nTrain := int(trainFrac * float64(m.Rows))
	tr := &cf.Matrix{Cols: m.Cols}
	te := &cf.Matrix{Cols: m.Cols}
	for u := 0; u < m.Rows; u++ {
		if u%10 < int(trainFrac*10) && tr.Rows < nTrain {
			tr.Data = append(tr.Data, m.Data[u])
			tr.Rows++
		} else {
			te.Data = append(te.Data, m.Data[u])
			te.Rows++
		}
	}
	return tr, te
}

// TestHeterogeneousOptima checks the perfmodel produces Fig.-1-style
// heterogeneity: no single configuration is near-optimal everywhere, and
// bad configurations lose big.
func TestHeterogeneousOptima(t *testing.T) {
	_, truth, cols := buildTruth(t, 60, perfmodel.Throughput)
	// For each config, its worst-case DFO across workloads.
	minWorst := math.Inf(1)
	distinct := map[int]bool{}
	for u := 0; u < truth.Rows; u++ {
		distinct[metrics.OptimumIndex(truth.Data[u], true)] = true
	}
	for c := 0; c < cols; c++ {
		worst := 0.0
		for u := 0; u < truth.Rows; u++ {
			d := metrics.DFO(truth.Data[u], c, true)
			if d > worst {
				worst = d
			}
		}
		if worst < minWorst {
			minWorst = worst
		}
	}
	if len(distinct) < 5 {
		t.Errorf("only %d distinct optimal configurations across 60 workloads; want heterogeneity", len(distinct))
	}
	if minWorst < 0.2 {
		t.Errorf("a single config is within %.0f%% of optimal everywhere; the tuning problem is trivial", minWorst*100)
	}
}

// TestDistillationBeatsNoNorm is the Fig.-4 sanity check: with the same
// training data and KNN-cosine, rating distillation must achieve a much
// lower MDFO than feeding raw KPIs to the CF.
func TestDistillationBeatsNoNorm(t *testing.T) {
	_, truth, _ := buildTruth(t, 90, perfmodel.ExecTime)
	train, test := splitRows(truth, 0.4)

	run := func(norm cf.Normalizer) float64 {
		rec, err := rectm.Train(train, false, rectm.Options{
			Normalizer: norm,
			Predictor:  func() cf.Predictor { return &cf.KNN{K: 10, Sim: cf.Cosine} },
			Learners:   10,
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var dfos []float64
		rng := uint64(99)
		for u := 0; u < test.Rows; u++ {
			// Reveal 5 random configs.
			row := make([]float64, test.Cols)
			for i := range row {
				row[i] = cf.Missing
			}
			for k := 0; k < 5; k++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				i := int(rng>>33) % test.Cols
				row[i] = test.Data[u][i]
			}
			pred := rec.PredictKPI(row)
			chosen := metrics.OptimumIndex(pred, false)
			dfos = append(dfos, metrics.DFO(test.Data[u], chosen, false))
		}
		return metrics.Mean(dfos)
	}

	mdfoDistill := run(&cf.Distiller{})
	mdfoNone := run(cf.NoNorm{})
	t.Logf("MDFO distill=%.4f none=%.4f", mdfoDistill, mdfoNone)
	if mdfoDistill >= mdfoNone {
		t.Errorf("distillation (%.4f) did not beat no-normalization (%.4f)", mdfoDistill, mdfoNone)
	}
	if mdfoDistill > 0.15 {
		t.Errorf("distillation MDFO %.4f too high; paper-shape expects close to optimal", mdfoDistill)
	}
}

// TestOptimizeEIConverges is the Fig.-5 sanity check: EI-driven exploration
// finds a near-optimal configuration in few explorations.
func TestOptimizeEIConverges(t *testing.T) {
	_, truth, _ := buildTruth(t, 90, perfmodel.ExecTime)
	train, test := splitRows(truth, 0.5)
	rec, err := rectm.Train(train, false, rectm.Options{
		Predictor: func() cf.Predictor { return &cf.KNN{K: 10, Sim: cf.Cosine} },
		Learners:  10,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var dfos, expl []float64
	for u := 0; u < test.Rows; u++ {
		row := test.Data[u]
		res := rec.Optimize(func(i int) float64 { return row[i] }, nil, smbo.Options{
			Policy: smbo.EI, Stop: smbo.StopCautious, Epsilon: 0.01, Seed: uint64(u),
		})
		dfos = append(dfos, metrics.DFO(row, res.Best, false))
		expl = append(expl, float64(len(res.Explored)))
	}
	mdfo := metrics.Mean(dfos)
	mexpl := metrics.Mean(expl)
	t.Logf("EI: MDFO=%.4f mean explorations=%.1f (of %d configs)", mdfo, mexpl, test.Cols)
	if mdfo > 0.08 {
		t.Errorf("EI MDFO %.4f too far from optimal", mdfo)
	}
	if mexpl > float64(test.Cols)/4 {
		t.Errorf("EI used %.1f explorations on average; should sample a small fraction of %d", mexpl, test.Cols)
	}
}

// TestModelSelectionPipeline exercises the full Train path with model
// selection enabled.
func TestModelSelectionPipeline(t *testing.T) {
	_, truth, _ := buildTruth(t, 48, perfmodel.Throughput)
	train, _ := splitRows(truth, 0.6)
	rec, err := rectm.Train(train, true, rectm.Options{
		Learners:     6,
		CVFolds:      3,
		SearchBudget: 10,
		Seed:         11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Selected == "" || rec.Selected == "fixed" {
		t.Errorf("model selection did not record a choice: %q", rec.Selected)
	}
}

// TestGrowIncorporatesWorkload verifies that growing the UM with a profiled
// row improves (or at least does not break) predictions for similar
// workloads, and validates dimension checks.
func TestGrowIncorporatesWorkload(t *testing.T) {
	_, truth, _ := buildTruth(t, 60, perfmodel.Throughput)
	train, test, _, _ := splitRowsW(truth, 0.3)
	rec, err := rectm.Train(train, true, rectm.Options{
		Predictor: func() cf.Predictor { return &cf.KNN{K: 5, Sim: cf.Cosine} },
		Learners:  4,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Grow(train, make([]float64, 3)); err == nil {
		t.Error("expected dimension-mismatch error")
	}
	// Grow with a fully profiled test row.
	extended, err := rec.Grow(train, test.Data[0])
	if err != nil {
		t.Fatal(err)
	}
	if extended.Rows != train.Rows+1 {
		t.Errorf("extended rows = %d, want %d", extended.Rows, train.Rows+1)
	}
	// A sibling variant of the grown workload (next test row, same
	// family with interleaved split) should still predict fine.
	row := make([]float64, test.Cols)
	for i := range row {
		row[i] = cf.Missing
	}
	for _, i := range []int{0, 10, 20, 30, 40} {
		row[i] = test.Data[1][i]
	}
	pred := rec.PredictKPI(row)
	chosen := metrics.OptimumIndex(pred, true)
	if d := metrics.DFO(test.Data[1], chosen, true); d > 0.5 {
		t.Errorf("post-grow prediction badly off: DFO %.2f", d)
	}
}

// splitRowsW is splitRows without the workload slice (local helper).
func splitRowsW(m *cf.Matrix, trainFrac float64) (train, test *cf.Matrix, a, b []struct{}) {
	tr, te := splitRows(m, trainFrac)
	return tr, te, nil, nil
}
