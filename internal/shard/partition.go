package shard

import (
	"fmt"
	"sort"
)

// Partitioner kinds, as spelled on the `proteusd --partitioner` flag and
// in the /statusz document.
const (
	// KindHash is the consistent-hash Ring: uniform placement, no range
	// locality (a scan's keys scatter across every shard).
	KindHash = "hash"
	// KindRange is the order-preserving RangePartitioner: contiguous key
	// spans per shard, so a scan touches only the shards whose boundary
	// spans intersect it.
	KindRange = "range"
)

// Partitioner is the placement seam of the sharded serving layer: the
// function from keys to shard indexes that internal/serve routes with,
// `proteusbench loadgen` replicates client-side, and the service-range
// scenario A/Bs deterministically. Implementations must be pure functions
// of their construction parameters (two identically-built partitioners
// agree on every key) and safe for concurrent use.
type Partitioner interface {
	// Shards returns the number of shards the partitioner places keys on.
	Shards() int
	// Owner returns the shard index owning key.
	Owner(key uint64) int
	// Participants returns the sorted distinct owners of keys — the shard
	// set a cross-shard operation must fence, in the global
	// lock-acquisition order (ascending shard index).
	Participants(keys []uint64) []int
	// OwnersInRange returns the sorted distinct shard set that can own
	// any key in [lo, hi] — the fence set of an ordered range scan. The
	// result may be conservative (a superset) but never misses an owner;
	// hi < lo yields nil.
	OwnersInRange(lo, hi uint64) []int
	// Kind names the partitioner ("hash" or "range") for flags, reports
	// and the /statusz document.
	Kind() string
}

// NewPartitioner builds the named partitioner kind over n shards. The
// universe parameter only matters to the range kind (see NewRange); hash
// ignores it. The construction is deterministic, so a client holding
// (kind, n, universe) — all three surfaced on /statusz — routes exactly
// like the server.
func NewPartitioner(kind string, n int, universe uint64) (Partitioner, error) {
	switch kind {
	case "", KindHash:
		return New(n), nil
	case KindRange:
		return NewRange(n, universe), nil
	}
	return nil, fmt.Errorf("shard: unknown partitioner kind %q (want %s or %s)", kind, KindHash, KindRange)
}

// distinctOwners collects the sorted distinct owners of keys under owner.
func distinctOwners(n int, owner func(uint64) int, keys []uint64) []int {
	seen := make([]bool, n)
	cnt := 0
	for _, k := range keys {
		if o := owner(k); !seen[o] {
			seen[o] = true
			cnt++
		}
	}
	return collectOwners(seen, cnt)
}

// collectOwners turns a seen-set into the ascending shard list every
// owner-set method returns (the fence-acquisition order).
func collectOwners(seen []bool, cnt int) []int {
	out := make([]int, 0, cnt)
	for s, ok := range seen {
		if ok {
			out = append(out, s)
		}
	}
	return out
}

// RangePartitioner is the order-preserving placement policy: the 64-bit
// key space is cut into contiguous spans by sorted boundary keys, and
// each span belongs to one shard. Ownership is a binary search over the
// boundaries, so contiguous key intervals map to few shards — the
// property that localizes `/kv/range` scans, which hashing destroys.
//
// A RangePartitioner is immutable and safe for concurrent use; Grow and
// SplitHeaviest return new partitioners rather than mutating.
type RangePartitioner struct {
	n int
	// universe is the practical key range the even pre-split covers (and
	// the weight clip for split decisions); 0 means the full 2^64 space.
	universe uint64
	// starts[i] is the first key of span i (ascending, starts[0] == 0);
	// span i ends where span i+1 begins, the last span runs to 2^64-1.
	starts []uint64
	// owners[i] is the shard owning span i. A freshly built partitioner
	// has one span per shard in shard order; splits give the new shard
	// the upper half of an existing span, so owners is a permutation with
	// repetition after rebalancing.
	owners []int
}

// NewRange builds an order-preserving partitioner for n shards (clamped
// to at least 1) by evenly pre-splitting [0, universe) into n spans:
// shard i owns [i*step, (i+1)*step), and the last shard's span extends
// past the universe to the top of the key space. universe 0 means the
// full 2^64 space. Like the hash ring, construction is a pure function
// of its arguments, so clients replicate placement locally.
//
// Size universe to the working key range of the data (proteusd's
// --key-universe flag): keys at or above it all land on the last span's
// shard, and keys far below it concentrate on the first shards.
func NewRange(n int, universe uint64) *RangePartitioner {
	if n < 1 {
		n = 1
	}
	step := uint64(1 << 63)
	if universe != 0 {
		step = universe / uint64(n)
	} else if n > 1 {
		// Full space: 2^64/n, computed without overflowing uint64.
		step = (^uint64(0))/uint64(n) + 1
	}
	if step == 0 {
		step = 1 // degenerate universe < n: give every shard a sliver
	}
	starts := make([]uint64, n)
	owners := make([]int, n)
	for i := 0; i < n; i++ {
		starts[i] = uint64(i) * step
		owners[i] = i
	}
	// Guard against overflow wrap for huge n*step: starts must ascend.
	for i := 1; i < n; i++ {
		if starts[i] <= starts[i-1] {
			starts[i] = starts[i-1] + 1
		}
	}
	return &RangePartitioner{n: n, universe: universe, starts: starts, owners: owners}
}

// NewRangeFromSpans builds a range partitioner from an explicit boundary
// set: starts must be strictly ascending with starts[0] == 0, owners
// aligns with starts, and every shard index in [0, max(owners)] must own
// at least one span (no unreachable shard). This is the constructor a
// rebalance plan or a fuzzer uses; NewRange covers the even pre-split.
func NewRangeFromSpans(starts []uint64, owners []int, universe uint64) (*RangePartitioner, error) {
	if len(starts) == 0 || len(starts) != len(owners) {
		return nil, fmt.Errorf("shard: %d starts but %d owners", len(starts), len(owners))
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("shard: first span must start at 0, got %d", starts[0])
	}
	n := 0
	for i, o := range owners {
		if i > 0 && starts[i] <= starts[i-1] {
			return nil, fmt.Errorf("shard: span starts not strictly ascending at %d", i)
		}
		if o < 0 {
			return nil, fmt.Errorf("shard: negative owner %d", o)
		}
		if o+1 > n {
			n = o + 1
		}
	}
	seen := make([]bool, n)
	for _, o := range owners {
		seen[o] = true
	}
	for s, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("shard: shard %d owns no span", s)
		}
	}
	return &RangePartitioner{
		n:        n,
		universe: universe,
		starts:   append([]uint64(nil), starts...),
		owners:   append([]int(nil), owners...),
	}, nil
}

// Kind implements Partitioner.
func (p *RangePartitioner) Kind() string { return KindRange }

// Shards implements Partitioner.
func (p *RangePartitioner) Shards() int { return p.n }

// Universe returns the practical key range the partitioner was sized for
// (0 = the full 2^64 space).
func (p *RangePartitioner) Universe() uint64 { return p.universe }

// Spans returns the boundary table as (start, owner) pairs in key order —
// the serializable description of the placement (for status endpoints,
// rebalance planning and tests). The returned slices are copies.
func (p *RangePartitioner) Spans() (starts []uint64, owners []int) {
	return append([]uint64(nil), p.starts...), append([]int(nil), p.owners...)
}

// spanOf returns the index of the span containing key.
func (p *RangePartitioner) spanOf(key uint64) int {
	// First span starting after key, minus one; starts[0]==0 keeps i >= 0.
	return sort.Search(len(p.starts), func(i int) bool { return p.starts[i] > key }) - 1
}

// Owner implements Partitioner: a binary search over the boundary keys.
func (p *RangePartitioner) Owner(key uint64) int { return p.owners[p.spanOf(key)] }

// Participants implements Partitioner.
func (p *RangePartitioner) Participants(keys []uint64) []int {
	return distinctOwners(p.n, p.Owner, keys)
}

// OwnersInRange implements Partitioner: the distinct owners of the spans
// intersecting [lo, hi], in ascending shard order. This is exact — the
// payoff of order preservation: a scan narrower than a span fences one
// shard, no matter how many shards the fleet has.
func (p *RangePartitioner) OwnersInRange(lo, hi uint64) []int {
	if hi < lo {
		return nil
	}
	seen := make([]bool, p.n)
	cnt := 0
	for i, j := p.spanOf(lo), p.spanOf(hi); i <= j; i++ {
		if o := p.owners[i]; !seen[o] {
			seen[o] = true
			cnt++
		}
	}
	return collectOwners(seen, cnt)
}

// clippedWidth is span i's width intersected with the universe — the
// weight split decisions use, so growth subdivides spans that carry real
// keys instead of the astronomically wide (and practically empty) tail
// above the universe.
func (p *RangePartitioner) clippedWidth(i int) uint64 {
	start := p.starts[i]
	var end uint64 // 0 reads as 2^64 via wrap-around subtraction below
	if i+1 < len(p.starts) {
		end = p.starts[i+1]
	}
	if p.universe != 0 {
		if start >= p.universe {
			return 0
		}
		if end == 0 || end > p.universe {
			end = p.universe
		}
	}
	if len(p.starts) == 1 && p.universe == 0 {
		return ^uint64(0) // single full-space span: saturate
	}
	return end - start
}

// split returns a copy with span i cut at its (universe-clipped)
// midpoint, the upper half owned by newOwner. Reports false when the
// span is too narrow to split.
func (p *RangePartitioner) split(i, newOwner int) (*RangePartitioner, bool) {
	w := p.clippedWidth(i)
	if w < 2 {
		return p, false
	}
	mid := p.starts[i] + w/2
	n := p.n
	if newOwner+1 > n {
		n = newOwner + 1
	}
	starts := make([]uint64, 0, len(p.starts)+1)
	owners := make([]int, 0, len(p.owners)+1)
	starts = append(starts, p.starts[:i+1]...)
	owners = append(owners, p.owners[:i+1]...)
	starts = append(starts, mid)
	owners = append(owners, newOwner)
	starts = append(starts, p.starts[i+1:]...)
	owners = append(owners, p.owners[i+1:]...)
	return &RangePartitioner{n: n, universe: p.universe, starts: starts, owners: owners}, true
}

// widest returns the index of the widest universe-clipped span among
// those owned by shard (-1 = any shard), breaking ties toward the lowest
// start key.
func (p *RangePartitioner) widest(shard int) int {
	best, bestW := -1, uint64(0)
	for i := range p.starts {
		if shard >= 0 && p.owners[i] != shard {
			continue
		}
		if w := p.clippedWidth(i); w > bestW {
			best, bestW = i, w
		}
	}
	return best
}

// Grow returns the N+1-shard partitioner: the widest universe-clipped
// span is cut at its midpoint and the new shard N takes the upper half.
// Boundary movement is minimal — every key either keeps its owner or
// moves to the new shard, mirroring the hash ring's N→N+1 contract.
func (p *RangePartitioner) Grow() *RangePartitioner {
	i := p.widest(-1)
	if i < 0 {
		return p
	}
	grown, _ := p.split(i, p.n)
	return grown
}

// SplitHeaviest is the rebalance step: given per-shard load counters
// (e.g. the ops_routed column of /statusz, one entry per shard), it cuts
// the heaviest shard's widest span at its midpoint and hands the upper
// half to the new shard N. Ties break toward the lowest shard index and
// lowest start key, keeping the step deterministic for a given counter
// vector. It reports the shard that was split, or ok=false when no span
// of the heaviest shard is wide enough to cut.
func (p *RangePartitioner) SplitHeaviest(load []uint64) (grown *RangePartitioner, split int, ok bool) {
	heaviest, best := -1, uint64(0)
	for s := 0; s < p.n && s < len(load); s++ {
		if heaviest == -1 || load[s] > best {
			heaviest, best = s, load[s]
		}
	}
	if heaviest < 0 {
		return p, -1, false
	}
	i := p.widest(heaviest)
	if i < 0 {
		return p, -1, false
	}
	grown, ok = p.split(i, p.n)
	if !ok {
		return p, -1, false
	}
	return grown, heaviest, true
}
