package workloads

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceChaos is the deterministic twin of proteusd's self-healing
// cross-shard commit path (internal/serve with fault injection): a
// sharded store whose cross-shard batches run the epoch-guarded fence
// protocol, a schedule of injected failures — coordinator crashes that
// abandon decided batches with their fences held, and foreign wedges that
// seize a fence from outside the protocol — and an in-workload failure
// detector that recovers every orphan from its recorded commit state:
// decided batches roll forward, unregistered holds abort-release.
//
// Time is operation count, not wall clock: fence heartbeats are stamped
// with the acquiring operation's sequence number and the orphan deadline
// is DeadlineOps operations, so a fixed seed injects the same faults and
// recovers them at the same operations every run — the property the
// byte-pinned service-chaos goldens lean on. The live daemon's detector
// (wall-clock deadline, per-shard goroutine) is exercised by the serve
// tests and the chaos e2e job; this workload pins the protocol algebra.
type ServiceChaos struct {
	// Label overrides the workload name (default "service-chaos").
	Label string
	// Shards is the number of key-space shards (default 4).
	Shards int
	// KeyRange bounds the keys (default 1 << 14).
	KeyRange int
	// InitialSize pre-populates the stores (default KeyRange/2).
	InitialSize int
	// CrossEvery makes every Nth operation a cross-shard batch put
	// (default 16).
	CrossEvery int
	// BatchKeys is the batch width (default 4).
	BatchKeys int
	// FaultKind selects the injected failure: "crash" abandons every
	// FaultEvery-th prepared batch post-decision (roll-forward leg),
	// "stall" wedges a fence under a foreign token after every
	// FaultEvery-th batch commits (abort leg). Default "crash".
	FaultKind string
	// FaultEvery is the injection cadence in cross-shard batches
	// (default 4); FaultCount caps total injections (default 6), so a
	// long run ends with a quiet tail in which every orphan is recovered
	// before metrics are captured.
	FaultEvery int
	FaultCount int
	// DeadlineOps is the orphan deadline in operations: a fence whose
	// heartbeat is DeadlineOps operations old is recovered (default 200).
	DeadlineOps int

	ring  *shard.Ring
	sets  []*RBSet
	words tm.Addr // 3 per shard: fence token, epoch, heartbeat (op number)
	ops   atomic.Uint64

	// recs is the commit-state registry: decided batches by token. A
	// record present at recovery time rolls forward; a token with no
	// record aborts. outstanding gates the detector scan so fault-free
	// stretches pay one atomic load per op.
	mu          sync.Mutex
	recs        map[uint64]*chaosRec
	outstanding atomic.Int64

	crashes    atomic.Uint64
	stalls     atomic.Uint64
	batches    atomic.Uint64
	committed  atomic.Uint64
	blocked    atomic.Uint64
	recovered  atomic.Uint64
	rolledFwd  atomic.Uint64
	abortedRec atomic.Uint64
	fencedSkip atomic.Uint64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, keyRange, crossEvery, batchKeys int
	faultEvery, faultCount, deadlineOps     int
	crashKind                               bool
}

// chaosRec is one decided-but-unfinished batch: everything the detector
// needs to finish it without its coordinator.
type chaosRec struct {
	token  uint64
	keys   []uint64
	val    uint64
	parts  []int
	epochs map[int]uint64
}

// Name implements Workload.
func (s *ServiceChaos) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-chaos"
}

func (s *ServiceChaos) params() (shards, keyRange, initial, crossEvery, batchKeys, faultEvery, faultCount, deadlineOps int, crashKind bool) {
	shards = s.Shards
	if shards <= 0 {
		shards = 4
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	crossEvery = s.CrossEvery
	if crossEvery <= 0 {
		crossEvery = 16
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	faultEvery = s.FaultEvery
	if faultEvery <= 0 {
		faultEvery = 4
	}
	faultCount = s.FaultCount
	if faultCount <= 0 {
		faultCount = 6
	}
	deadlineOps = s.DeadlineOps
	if deadlineOps <= 0 {
		deadlineOps = 200
	}
	crashKind = s.FaultKind != "stall"
	return
}

// Setup implements Workload.
func (s *ServiceChaos) Setup(h *tm.Heap, rng *Rand) error {
	var initial int
	s.shards, s.keyRange, initial, s.crossEvery, s.batchKeys,
		s.faultEvery, s.faultCount, s.deadlineOps, s.crashKind = s.params()
	if s.FaultKind != "" && s.FaultKind != "crash" && s.FaultKind != "stall" {
		return fmt.Errorf("chaos: unknown fault kind %q (want crash or stall)", s.FaultKind)
	}
	s.ring = shard.New(s.shards)
	s.sets = make([]*RBSet, s.shards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("chaos: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	words, err := h.Alloc(3 * s.shards)
	if err != nil {
		return fmt.Errorf("chaos: fence words: %w", err)
	}
	s.words = words
	s.recs = make(map[uint64]*chaosRec)
	s.ops.Store(0)
	s.outstanding.Store(0)
	for _, c := range []*atomic.Uint64{&s.crashes, &s.stalls, &s.batches, &s.committed,
		&s.blocked, &s.recovered, &s.rolledFwd, &s.abortedRec, &s.fencedSkip} {
		c.Store(0)
	}
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := s.ring.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// Fence word addresses of shard i.
func (s *ServiceChaos) fence(i int) tm.Addr { return s.words + tm.Addr(3*i) }
func (s *ServiceChaos) epoch(i int) tm.Addr { return s.words + tm.Addr(3*i) + 1 }
func (s *ServiceChaos) beat(i int) tm.Addr  { return s.words + tm.Addr(3*i) + 2 }

// Op implements Workload: run the failure detector, then either one
// cross-shard batch put (every CrossEvery-th call, possibly faulted) or
// one single-key operation on the owning shard under its fence.
func (s *ServiceChaos) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if s.outstanding.Load() > 0 {
		s.detect(r, self, n)
	}
	if n%uint64(s.crossEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	k := uint64(rng.Intn(s.keyRange))
	o := s.ring.Owner(k)
	set, fence := s.sets[o], s.fence(o)
	mix := serviceMixes["mixed"]
	p := rng.Float64()
	// An orphaned fence persists until the detector's deadline, so a
	// fenced operation is skipped (and counted), not spun on — the
	// workload analogue of the serve worker's requeue.
	var fenced bool
	switch {
	case p < mix.Get:
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			set.Get(tx, k)
		})
	case p < mix.Get+mix.Put:
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			set.Insert(tx, self, k, n)
		})
	case p < mix.Get+mix.Put+mix.Del:
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			set.Delete(tx, self, k)
		})
	default:
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			if v, ok := set.Get(tx, k); ok {
				set.Insert(tx, self, k, v+1)
			}
		})
	}
	if fenced {
		s.fencedSkip.Add(1)
	}
}

// crossBatch runs one cross-shard batch put: ordered epoch-bumping
// acquire with heartbeat, decision record, then either the injected
// fault or the normal guarded apply+release.
func (s *ServiceChaos) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(s.keyRange))
	}
	parts := s.ring.Participants(keys)
	token := n // unique and nonzero
	epochs := make(map[int]uint64, len(parts))
	acquired := 0
	for _, p := range parts {
		fw, ew, bw := s.fence(p), s.epoch(p), s.beat(p)
		var got bool
		var e uint64
		r.Atomic(self, func(tx tm.Txn) {
			got = false
			if tx.Load(fw) != 0 {
				return
			}
			e = tx.Load(ew) + 1
			tx.Store(fw, token)
			tx.Store(ew, e)
			tx.Store(bw, n)
			got = true
		})
		if !got {
			break
		}
		epochs[p] = e
		acquired++
	}
	if acquired < len(parts) {
		// A participant's fence is orphaned by an outstanding fault:
		// abort-all and skip the batch — the detector will clear the
		// orphan at its deadline, not mid-batch.
		for _, p := range parts[:acquired] {
			s.release(r, self, p, token, epochs[p])
		}
		s.blocked.Add(1)
		return
	}
	s.batches.Add(1)
	b := s.batches.Load()

	// Prepared: record the decision. From here the batch must commit —
	// with or without its coordinator.
	rec := &chaosRec{token: token, keys: keys, val: n, parts: parts, epochs: epochs}
	s.mu.Lock()
	s.recs[token] = rec
	s.mu.Unlock()

	if s.crashKind && s.faultInjected(b) {
		// Coordinator crash between prepare and apply: fences stay held,
		// the decision record stays behind for the detector.
		s.crashes.Add(1)
		s.outstanding.Add(1)
		return
	}

	for _, p := range parts {
		set, fw, ew := s.sets[p], s.fence(p), s.epoch(p)
		e := epochs[p]
		r.Atomic(self, func(tx tm.Txn) {
			if tx.Load(fw) != token || tx.Load(ew) != e {
				return // superseded by recovery: a no-op, not corruption
			}
			for _, k := range keys {
				if s.ring.Owner(k) == p {
					set.Insert(tx, self, k, n)
				}
			}
			tx.Store(fw, 0)
		})
	}
	s.mu.Lock()
	delete(s.recs, token)
	s.mu.Unlock()
	s.committed.Add(1)

	if !s.crashKind && s.faultInjected(b) {
		// Foreign wedge: seize one shard's fence from outside the
		// protocol. No decision record exists, so recovery must abort it.
		w := int(n) % s.shards
		fw, ew, bw := s.fence(w), s.epoch(w), s.beat(w)
		wedge := uint64(1)<<63 | n
		var got bool
		r.Atomic(self, func(tx tm.Txn) {
			got = false
			if tx.Load(fw) != 0 {
				return
			}
			tx.Store(fw, wedge)
			tx.Store(ew, tx.Load(ew)+1)
			tx.Store(bw, n)
			got = true
		})
		if got {
			s.stalls.Add(1)
			s.outstanding.Add(1)
		}
	}
}

// faultInjected reports whether batch b is on the fault schedule, under
// the FaultCount cap.
func (s *ServiceChaos) faultInjected(b uint64) bool {
	if b%uint64(s.faultEvery) != 0 {
		return false
	}
	injected := s.crashes.Load() + s.stalls.Load()
	return injected < uint64(s.faultCount)
}

// release frees shard p's fence iff still held by (token, epoch).
func (s *ServiceChaos) release(r Runner, self int, p int, token, epoch uint64) {
	fw, ew := s.fence(p), s.epoch(p)
	r.Atomic(self, func(tx tm.Txn) {
		if tx.Load(fw) == token && tx.Load(ew) == epoch {
			tx.Store(fw, 0)
		}
	})
}

// detect is the failure-detector step: any fence whose heartbeat is
// DeadlineOps operations old is recovered — the whole batch rolled
// forward if its decision was recorded, the hold released with nothing
// applied otherwise.
func (s *ServiceChaos) detect(r Runner, self int, n uint64) {
	for i := 0; i < s.shards; i++ {
		var token, epoch, beat uint64
		fw, ew, bw := s.fence(i), s.epoch(i), s.beat(i)
		r.Atomic(self, func(tx tm.Txn) {
			token, epoch, beat = tx.Load(fw), tx.Load(ew), tx.Load(bw)
		})
		if token == 0 || n-beat < uint64(s.deadlineOps) {
			continue
		}
		s.mu.Lock()
		rec := s.recs[token]
		delete(s.recs, token) // claim-once
		s.mu.Unlock()
		if rec == nil {
			// Unregistered hold (foreign wedge): abort-release this shard.
			s.release(r, self, i, token, epoch)
			s.recovered.Add(1)
			s.abortedRec.Add(1)
			s.outstanding.Add(-1)
			continue
		}
		// Decided batch: roll every participant forward on the dead
		// coordinator's behalf, each under its (token, epoch) guard.
		for _, p := range rec.parts {
			set, pfw, pew := s.sets[p], s.fence(p), s.epoch(p)
			e := rec.epochs[p]
			r.Atomic(self, func(tx tm.Txn) {
				if tx.Load(pfw) != rec.token || tx.Load(pew) != e {
					return
				}
				for _, k := range rec.keys {
					if s.ring.Owner(k) == p {
						set.Insert(tx, self, k, rec.val)
					}
				}
				tx.Store(pfw, 0)
			})
		}
		s.recovered.Add(1)
		s.rolledFwd.Add(1)
		s.outstanding.Add(-1)
	}
}

// Metrics implements Metered.
func (s *ServiceChaos) Metrics() map[string]uint64 {
	return map[string]uint64{
		"crashes_injected":     s.crashes.Load(),
		"stalls_injected":      s.stalls.Load(),
		"cross_batches":        s.batches.Load(),
		"cross_committed":      s.committed.Load(),
		"batch_blocked":        s.blocked.Load(),
		"fence_recovered":      s.recovered.Load(),
		"fence_rolled_forward": s.rolledFwd.Load(),
		"fence_aborted":        s.abortedRec.Load(),
		"fenced_skips":         s.fencedSkip.Load(),
	}
}

// Verify implements Verifier: a final recovery sweep (anything still
// orphaned at drain — only possible when the run ends inside a deadline
// window — is recovered regardless of age), then every fence must be
// free, the registry empty, and every key on the shard that owns it.
func (s *ServiceChaos) Verify(h *tm.Heap) error {
	seq := NewBareRunner(seqAlg(), h, 1)
	s.detect(seq, 0, s.ops.Load()+uint64(s.deadlineOps))
	s.mu.Lock()
	pending := len(s.recs)
	s.mu.Unlock()
	if pending != 0 {
		return fmt.Errorf("chaos: %d decided batches never recovered", pending)
	}
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if v := tx.Load(s.fence(i)); v != 0 {
				err = fmt.Errorf("chaos: shard %d fence left held by %d", i, v)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if o := s.ring.Owner(k); o != i {
					err = fmt.Errorf("chaos: key %d found on shard %d but owned by %d", k, i, o)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	if got := s.crashes.Load() + s.stalls.Load(); s.recovered.Load() != got {
		return fmt.Errorf("chaos: recovered %d orphans for %d injected faults", s.recovered.Load(), got)
	}
	return nil
}
