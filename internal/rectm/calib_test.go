package rectm_test

import (
	"testing"

	"repro/internal/cf"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/rectm"
)

func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration")
	}
	gen := &perfmodel.Generator{Machine: machine.A(), Seed: 12345}
	ws := gen.Workloads(300)
	cfgs := gen.Machine.Configs()
	truth := gen.Matrix(ws, cfgs, perfmodel.ExecTime)
	train, test := splitRows(truth, 0.3)
	t.Logf("train=%d test=%d cols=%d", train.Rows, test.Rows, truth.Cols)

	for _, nKnown := range []int{2, 3, 5, 10, 20} {
		for _, normName := range []string{"distill", "none", "max", "rc", "ideal"} {
			var norm cf.Normalizer
			switch normName {
			case "distill":
				norm = &cf.Distiller{}
			case "none":
				norm = cf.NoNorm{}
			case "max":
				norm = &cf.MaxNorm{}
			case "rc":
				norm = &cf.RCNorm{}
			case "ideal":
				norm = cf.NewIdealNorm(cf.GoodnessMatrix(truth, false))
			}
			rec, err := rectm.Train(train, false, rectm.Options{
				Normalizer: norm,
				Predictor:  func() cf.Predictor { return &cf.KNN{K: 10, Sim: cf.Cosine} },
				Learners:   10,
				Seed:       7,
			})
			if err != nil {
				t.Fatal(err)
			}
			var dfos, mapes []float64
			rng := uint64(99)
			for u := 0; u < test.Rows; u++ {
				row := make([]float64, test.Cols)
				for i := range row {
					row[i] = cf.Missing
				}
				seen := 0
				for seen < nKnown {
					rng = rng*6364136223846793005 + 1442695040888963407
					i := int(rng>>33) % test.Cols
					if cf.IsMissing(row[i]) {
						row[i] = test.Data[u][i]
						seen++
					}
				}
				pred := rec.PredictKPI(row)
				chosen := metrics.OptimumIndex(pred, false)
				dfos = append(dfos, metrics.DFO(test.Data[u], chosen, false))
				mapes = append(mapes, metrics.MAPE(test.Data[u], pred))
			}
			t.Logf("nKnown=%2d norm=%-8s MAPE=%.3f MDFO=%.4f", nKnown, normName, metrics.Mean(mapes), metrics.Mean(dfos))
		}
	}
}
