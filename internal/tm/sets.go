package tm

// smallSetLinear is the write-set size up to which membership lookups use a
// linear scan; beyond it a map index is maintained. Most transactions in the
// benchmark suite write fewer than a dozen words, so the common case stays
// allocation- and hash-free.
const smallSetLinear = 16

// WEntry is one redo-log entry of a WriteSet.
type WEntry struct {
	Addr Addr
	Val  uint64
}

// WriteSet is a redo log with O(1) amortized lookup. It is reused across
// transactions: Reset keeps the backing storage.
type WriteSet struct {
	entries []WEntry
	idx     map[Addr]int32
	indexed bool
}

func (w *WriteSet) init() {
	w.entries = make([]WEntry, 0, 64)
	w.idx = make(map[Addr]int32, 64)
}

// Len returns the number of distinct addresses in the set.
func (w *WriteSet) Len() int { return len(w.entries) }

// Entries exposes the log in insertion order; callers must not retain the
// slice across Reset.
func (w *WriteSet) Entries() []WEntry { return w.entries }

// Put records the write of v to a, overwriting any earlier write to a.
func (w *WriteSet) Put(a Addr, v uint64) {
	if w.indexed {
		if i, ok := w.idx[a]; ok {
			w.entries[i].Val = v
			return
		}
		w.idx[a] = int32(len(w.entries))
		w.entries = append(w.entries, WEntry{a, v})
		return
	}
	for i := range w.entries {
		if w.entries[i].Addr == a {
			w.entries[i].Val = v
			return
		}
	}
	w.entries = append(w.entries, WEntry{a, v})
	if len(w.entries) > smallSetLinear {
		w.buildIndex()
	}
}

// Get returns the buffered value for a, if any.
func (w *WriteSet) Get(a Addr) (uint64, bool) {
	if w.indexed {
		if i, ok := w.idx[a]; ok {
			return w.entries[i].Val, true
		}
		return 0, false
	}
	for i := len(w.entries) - 1; i >= 0; i-- {
		if w.entries[i].Addr == a {
			return w.entries[i].Val, true
		}
	}
	return 0, false
}

func (w *WriteSet) buildIndex() {
	if w.idx == nil {
		w.idx = make(map[Addr]int32, 2*len(w.entries))
	}
	for i := range w.entries {
		w.idx[w.entries[i].Addr] = int32(i)
	}
	w.indexed = true
}

// Reset empties the set, retaining capacity.
func (w *WriteSet) Reset() {
	w.entries = w.entries[:0]
	if w.indexed {
		clear(w.idx)
		w.indexed = false
	}
}

// RSEntry is one ownership-record read-set entry: the stripe index and the
// version observed when the read was performed.
type RSEntry struct {
	Stripe  uint32
	Version uint64
}

// ReadSet is the ownership-record read set used by TL2, TinySTM and SwissTM.
type ReadSet struct {
	entries []RSEntry
}

// Len returns the number of recorded reads.
func (r *ReadSet) Len() int { return len(r.entries) }

// Entries exposes the recorded reads; callers must not retain across Reset.
func (r *ReadSet) Entries() []RSEntry { return r.entries }

// Add records that the stripe was read at the given version.
func (r *ReadSet) Add(stripe uint32, version uint64) {
	r.entries = append(r.entries, RSEntry{stripe, version})
}

// Reset empties the set, retaining capacity.
func (r *ReadSet) Reset() { r.entries = r.entries[:0] }

// VEntry is one value-based read-set entry (NOrec).
type VEntry struct {
	Addr Addr
	Val  uint64
}

// ValueReadSet is NOrec's value-based read log.
type ValueReadSet struct {
	entries []VEntry
}

// Len returns the number of recorded reads.
func (r *ValueReadSet) Len() int { return len(r.entries) }

// Entries exposes the recorded reads; callers must not retain across Reset.
func (r *ValueReadSet) Entries() []VEntry { return r.entries }

// Add records that address a held value v when read.
func (r *ValueReadSet) Add(a Addr, v uint64) {
	r.entries = append(r.entries, VEntry{a, v})
}

// Reset empties the set, retaining capacity.
func (r *ValueReadSet) Reset() { r.entries = r.entries[:0] }

// LockEntry records a stripe locked encounter-time together with the record
// value it held before locking, so aborts can restore it. PrevRVer
// additionally preserves SwissTM's read-version for the stripe (unused by
// the single-lock-word algorithms).
type LockEntry struct {
	Stripe   uint32
	PrevVal  uint64
	PrevRVer uint64
}

// LockSet tracks the ownership records a transaction holds.
type LockSet struct {
	entries []LockEntry
}

func (l *LockSet) init() { l.entries = make([]LockEntry, 0, 32) }

// Len returns the number of held locks.
func (l *LockSet) Len() int { return len(l.entries) }

// Entries exposes the held locks; callers must not retain across Reset.
func (l *LockSet) Entries() []LockEntry { return l.entries }

// Add records that the stripe was locked and held prev before.
func (l *LockSet) Add(stripe uint32, prev uint64) {
	l.entries = append(l.entries, LockEntry{Stripe: stripe, PrevVal: prev})
}

// AddWithRVer records a locked stripe together with its read-version at lock
// time (SwissTM).
func (l *LockSet) AddWithRVer(stripe uint32, prev, prevRVer uint64) {
	l.entries = append(l.entries, LockEntry{Stripe: stripe, PrevVal: prev, PrevRVer: prevRVer})
}

// Holds reports whether the stripe is already in the lock set.
func (l *LockSet) Holds(stripe uint32) bool {
	for i := range l.entries {
		if l.entries[i].Stripe == stripe {
			return true
		}
	}
	return false
}

// Reset empties the set, retaining capacity.
func (l *LockSet) Reset() { l.entries = l.entries[:0] }
