package experiments

import (
	"fmt"
	"io"

	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/ml"
	"repro/internal/perfmodel"
	"repro/internal/rectm"
	"repro/internal/smbo"
)

// Fig7Result reproduces Fig. 7: ProteusTM's CF pipeline versus pure
// machine-learning classifiers (CART, SMO, MLP) trained on workload
// characterization features, at 30 % and 70 % training fractions
// (throughput, Machine A).
type Fig7Result struct {
	Splits []Fig7Split
}

// Fig7Split is one panel (one train/test split).
type Fig7Split struct {
	TrainFrac float64
	// Systems maps system name → DFO samples over the test set.
	Systems map[string][]float64
	// P90 and Mean summarize each system's DFO distribution.
	P90, Mean map[string]float64
	// MedianExpl and P90Expl are ProteusTM's exploration counts.
	MedianExpl, P90Expl float64
}

// Fig7 runs the experiment.
func Fig7(scale Scale) (Fig7Result, error) {
	res := Fig7Result{}
	for _, frac := range []float64{0.3, 0.7} {
		split, err := fig7Split(scale, frac)
		if err != nil {
			return res, err
		}
		res.Splits = append(res.Splits, split)
	}
	return res, nil
}

func fig7Split(scale Scale, trainFrac float64) (Fig7Split, error) {
	split := Fig7Split{
		TrainFrac: trainFrac,
		Systems:   map[string][]float64{},
		P90:       map[string]float64{},
		Mean:      map[string]float64{},
	}
	_, ws, truth := truthFor(machine.A(), scale.workloadCount(), perfmodel.Throughput, 31337)
	train, test, trainW, testW := splitRows(truth, ws, trainFrac)

	// --- ProteusTM: CF pipeline with model selection + EI + Cautious stop.
	rec, err := rectm.Train(train, true, rectm.Options{
		Learners:     10,
		CVFolds:      4,
		SearchBudget: 20,
		Seed:         3,
	})
	if err != nil {
		return split, fmt.Errorf("fig7: %w", err)
	}
	var expl []float64
	for u := 0; u < test.Rows; u++ {
		row := test.Data[u]
		opt := rec.Optimize(func(i int) float64 { return row[i] }, nil, smbo.Options{
			Policy:  smbo.EI,
			Stop:    smbo.StopCautious,
			Epsilon: 0.01,
			Seed:    uint64(u) * 11,
		})
		split.Systems["ProteusTM"] = append(split.Systems["ProteusTM"], metrics.DFO(row, opt.Best, true))
		expl = append(expl, float64(len(opt.Explored)))
	}
	split.MedianExpl = metrics.Median(expl)
	split.P90Expl = metrics.Percentile(expl, 90)

	// --- ML baselines: features → best-config class.
	trainX := make([][]float64, len(trainW))
	trainY := make([]int, len(trainW))
	for i, w := range trainW {
		trainX[i] = w.Features()
		trainY[i] = metrics.OptimumIndex(train.Data[i], true)
	}
	testX := make([][]float64, len(testW))
	for i, w := range testW {
		testX[i] = w.Features()
	}
	baselines := []struct {
		name  string
		specs []ml.TuneSpec
	}{
		{"CART", ml.CandidatesCART()},
		{"SMO", ml.CandidatesSMO()},
		{"MLP", ml.CandidatesMLP()},
	}
	budget := 100 // the paper evaluates 100 random combinations
	for _, b := range baselines {
		spec := ml.Tune(b.specs, trainX, trainY, 3, budget, 77)
		clf := spec.New()
		clf.Fit(trainX, trainY)
		for u := 0; u < test.Rows; u++ {
			chosen := clf.Predict(testX[u])
			split.Systems[b.name] = append(split.Systems[b.name], metrics.DFO(test.Data[u], chosen, true))
		}
	}
	for name, dfos := range split.Systems {
		split.P90[name] = metrics.Percentile(dfos, 90)
		split.Mean[name] = metrics.Mean(dfos)
	}
	return split, nil
}

// Print renders both panels.
func (r Fig7Result) Print(w io.Writer) {
	header(w, "Figure 7: ProteusTM vs machine-learning classifiers (throughput, Machine A)")
	for _, split := range r.Splits {
		fmt.Fprintf(w, "\n%.0f%% training data:\n", split.TrainFrac*100)
		fmt.Fprintf(w, "%-12s%12s%12s\n", "system", "mean DFO", "90th pct")
		for _, name := range []string{"ProteusTM", "CART", "SMO", "MLP"} {
			fmt.Fprintf(w, "%-12s%12s%12s\n", name, pct(split.Mean[name]), pct(split.P90[name]))
		}
		fmt.Fprintf(w, "ProteusTM explorations: median %.0f, 90th pct %.0f\n",
			split.MedianExpl, split.P90Expl)
	}
	fmt.Fprintln(w, "\nShape check: ProteusTM ≪ ML at 30% training; the gap narrows at 70%;")
	fmt.Fprintln(w, "ProteusTM's accuracy is nearly split-independent.")
}
