package stm

import "repro/internal/tm"

// SwissTM (Dragojević, Guerraoui, Kapałka — PLDI 2009) mixes eager and lazy
// conflict detection: write-write conflicts are detected eagerly by
// acquiring a per-stripe write lock at first write, while read-write
// conflicts stay invisible until commit thanks to a separate per-stripe read
// version. A two-phase contention manager lets short transactions abort
// themselves cheaply while long transactions (many accesses) escalate to a
// greedy priority scheme, which is what gives SwissTM its edge on mixed
// workloads with long transactions.
type SwissTM struct{}

// Name implements tm.Algorithm.
func (SwissTM) Name() string { return "swiss" }

// swissEagerThreshold is the number of completed accesses after which a
// transaction switches from polite self-abort to greedy priority (SwissTM's
// two-phase contention manager).
const swissEagerThreshold = 16

// swissRLocked is the read-version sentinel a committing writer installs on
// its written stripes before publishing the redo log, so concurrent readers
// can never pair new data with an old read version.
const swissRLocked = ^uint64(0)

// Begin implements tm.Algorithm.
func (SwissTM) Begin(c *tm.Ctx) {
	c.ResetSets()
	c.RV = c.H.Clock()
	c.AbortReason = tm.AbortNone
}

// Load implements tm.Algorithm. Reads consult the separate read-version
// table (not the write-lock word), so a stripe being write-locked by a
// concurrent transaction does not stall readers until that writer commits —
// SwissTM's lazy read-write detection.
func (s SwissTM) Load(c *tm.Ctx, a tm.Addr) uint64 {
	h := c.H
	st := h.Stripe(a)
	if w := h.OrecLoad(st); func() bool { o, l := tm.OrecLocked(w); return l && o == c.ID }() {
		if v, ok := c.WS.Get(a); ok {
			return v
		}
		return h.LoadWord(a)
	}
	for {
		v1 := h.RVerLoad(st)
		if v1 == swissRLocked {
			continue // a writer is publishing this stripe; respin
		}
		v := h.LoadWord(a)
		if h.RVerLoad(st) != v1 {
			continue
		}
		if v1 > c.RV {
			if !swissExtend(c) {
				c.Retry(tm.AbortConflict)
			}
			continue
		}
		c.RS.Add(st, v1)
		return v
	}
}

// Store implements tm.Algorithm: acquire the stripe's write lock eagerly.
// On a write-write conflict the two-phase contention manager decides who
// aborts: young transactions abort themselves; transactions past the eager
// threshold compare greedy priorities (restart counts) and doom the loser.
func (s SwissTM) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	h := c.H
	st := h.Stripe(a)
	mine := tm.OrecLockedBy(c.ID)
	for {
		cur := h.OrecLoad(st)
		if owner, locked := tm.OrecLocked(cur); locked {
			if owner == c.ID {
				c.WS.Put(a, v)
				return
			}
			if c.WS.Len()+c.RS.Len() < swissEagerThreshold || c.Priority == 0 {
				c.Retry(tm.AbortConflict) // phase one: polite
			}
			// Phase two (greedy): spin briefly hoping the owner
			// finishes; if the lock does not change hands we
			// abort ourselves anyway — remote aborts are not
			// observable in a redo-log STM without doom flags.
			for i := 0; i < 64; i++ {
				if h.OrecLoad(st) != cur {
					break
				}
			}
			if h.OrecLoad(st) == cur {
				c.Retry(tm.AbortConflict)
			}
			continue
		}
		if rv := h.RVerLoad(st); rv > c.RV {
			if rv == swissRLocked {
				continue // publishing writer; respin
			}
			if !swissExtend(c) {
				c.Retry(tm.AbortConflict)
			}
			continue
		}
		if h.OrecCAS(st, cur, mine) {
			// Re-sample the read version now that the lock freezes it:
			// a foreign commit may have slipped in (releasing the orec
			// back to the same value) between the check above and the
			// CAS. A frozen version ≤ RV also guarantees it equals the
			// version any earlier read of this stripe observed, which
			// is what lets validation skip self-locked stripes.
			frozen := h.RVerLoad(st)
			c.Locked.AddWithRVer(st, cur, frozen)
			if frozen > c.RV {
				c.Retry(tm.AbortConflict)
			}
			c.WS.Put(a, v)
			return
		}
	}
}

// Commit implements tm.Algorithm. Publication order is crucial for opacity:
// the read versions of written stripes are locked *before* the global clock
// advances, so a transaction that begins after the clock bump (and whose
// snapshot therefore covers this commit) can never read the stripe's stale
// pre-image — it spins on the locked read version until the new data is
// published.
func (s SwissTM) Commit(c *tm.Ctx) bool {
	h := c.H
	if c.WS.Len() == 0 {
		c.Priority = 0
		return true
	}
	for _, le := range c.Locked.Entries() {
		h.RVerStore(le.Stripe, swissRLocked)
	}
	wv := h.ClockAdd(1)
	if wv != c.RV+1 && !swissValidate(c) {
		// Unlock the read versions before reporting failure; Abort will
		// release the write locks.
		for _, le := range c.Locked.Entries() {
			h.RVerStore(le.Stripe, le.PrevRVer)
		}
		c.AbortReason = tm.AbortConflict
		return false
	}
	for _, e := range c.WS.Entries() {
		h.StoreWord(e.Addr, e.Val)
	}
	for _, le := range c.Locked.Entries() {
		h.RVerStore(le.Stripe, wv)
		h.OrecStore(le.Stripe, le.PrevVal) // release the write lock
	}
	c.Locked.Reset()
	c.Priority = 0
	return true
}

// Abort implements tm.Algorithm: restore the read versions of any stripes
// still frozen, release the write locks, and raise the greedy priority for
// the retry. Read-version restore must precede the write-lock release:
// once the orec is free another writer may lock the stripe and own its read
// version.
func (s SwissTM) Abort(c *tm.Ctx) {
	h := c.H
	for _, le := range c.Locked.Entries() {
		if h.RVerLoad(le.Stripe) == swissRLocked {
			h.RVerStore(le.Stripe, le.PrevRVer)
		}
		h.OrecStore(le.Stripe, le.PrevVal)
	}
	c.Locked.Reset()
	c.Priority++
}

// swissExtend is timestamp extension against the read-version table.
func swissExtend(c *tm.Ctx) bool {
	now := c.H.Clock()
	if !swissValidate(c) {
		return false
	}
	c.RV = now
	return true
}

// swissValidate checks that no read stripe's read version moved past the
// value observed at read time. Stripes whose write lock this transaction
// holds are skipped: their read version is frozen since we locked them
// (commit freezes them to the sentinel before validating).
func swissValidate(c *tm.Ctx) bool {
	h := c.H
	for _, re := range c.RS.Entries() {
		if h.RVerLoad(re.Stripe) != re.Version {
			if owner, locked := tm.OrecLocked(h.OrecLoad(re.Stripe)); locked && owner == c.ID {
				continue
			}
			return false
		}
	}
	return true
}
