package serve

import (
	"net/http"
	"sort"
	"time"

	"repro/internal/metrics"
	"repro/internal/shard"
)

// Status is the /statusz document. Field names are part of the operator
// interface (docs/serving.md and docs/sharding.md document them; a golden
// test pins the schema), so additions are fine but renames are breaking.
// On a sharded server the top-level config/tm blocks are fleet rollups;
// the per-shard breakdown lives in Shards.
type Status struct {
	Server  ServerStatus  `json:"server"`
	Config  ConfigStatus  `json:"config"`
	TM      TMStatus      `json:"tm"`
	Ops     OpsStatus     `json:"ops"`
	Latency LatencyStatus `json:"latency_ms"`
	// QueueWait is accept→execution-start; Service is the execution
	// alone. Latency (above) is accept→reply. Separating them tells a
	// saturated admission queue apart from a slow store.
	QueueWait LatencyStatus `json:"queue_wait_ms"`
	Service   LatencyStatus `json:"service_ms"`
	// Shards is the per-shard breakdown: one entry per key-space shard,
	// each with its own installed configuration, tuner state and abort
	// profile.
	Shards []ShardStatus `json:"shards"`
	// Reconfigurations is the optimization-phase event log across all
	// shards, ordered by time.
	Reconfigurations []ReconfigStatus `json:"reconfigurations"`
	// Timeline is the tail of each shard's KPI timeline merged and
	// ordered by time (KPI = committed transactions per second).
	Timeline []TimelineStatus `json:"timeline"`
}

// ServerStatus describes the serving layer itself. Workers and QueueDepth
// are per shard; ActiveWorkers and QueueLen are summed across shards.
// Partitioner and KeyUniverse, together with Shards, are everything a
// client needs to rebuild the exact placement function the server routes
// with (shard.NewPartitioner) — the loadgen skew planner does.
type ServerStatus struct {
	UptimeSec     float64 `json:"uptime_sec"`
	Shards        int     `json:"shards"`
	Partitioner   string  `json:"partitioner"`
	KeyUniverse   uint64  `json:"key_universe"`
	Workers       int     `json:"workers"`
	ActiveWorkers int     `json:"active_workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueLen      int     `json:"queue_len"`
	// SLOP99Ms and DeadlineMs echo the configured p99 target and default
	// per-op deadline in milliseconds (0 = unset) so a monitoring stack
	// can assert attainment against the target the server actually runs.
	SLOP99Ms   float64 `json:"slo_p99_ms"`
	DeadlineMs float64 `json:"deadline_ms"`
	// FenceDeadlineMs echoes the failure detector's orphaned-fence
	// deadline (negative = detection disabled).
	FenceDeadlineMs float64 `json:"fence_deadline_ms"`
	// PartitionerEpoch is the placement generation: 0 at boot, +1 per
	// installed reshard. A client that cached Partitioner/SpanStarts must
	// rebuild its replica when this moves (the loadgen skew planner does).
	PartitionerEpoch uint64 `json:"partitioner_epoch"`
	// Resharding is true while a migration (split or merge) is in flight.
	Resharding bool `json:"resharding"`
	// SpareShards counts fleet entries above the placement's top shard:
	// shards a rolled-back migration left behind. The next split reuses
	// them; the reaper retires them after Options.SpareGrace.
	SpareShards int `json:"spare_shards"`
	// SpanStarts/SpanOwners are the range partitioner's live span table
	// (start key of each span, ascending, and its owning shard) — after a
	// reshard the placement is no longer derivable from Shards alone, so
	// clients rebuild from the table (shard.NewRangeFromSpans). Absent
	// under the hash/modulo partitioners.
	SpanStarts []uint64 `json:"span_starts,omitempty"`
	SpanOwners []int    `json:"span_owners,omitempty"`
}

// ConfigStatus describes the fleet's configuration and tuner state.
// Current is shard 0's installed configuration (the only shard when
// unsharded); Distinct counts distinct configurations across shards, and
// Phases sums optimization phases fleet-wide.
type ConfigStatus struct {
	Current   string `json:"current"`
	Distinct  int    `json:"distinct"`
	AutoTune  bool   `json:"autotune"`
	Phases    int    `json:"phases"`
	Exploring bool   `json:"exploring"`
}

// TMStatus aggregates transaction statistics since startup (fleet-wide at
// the top level, per shard inside ShardStatus).
type TMStatus struct {
	Commits          uint64   `json:"commits"`
	Aborts           uint64   `json:"aborts"`
	AbortRate        float64  `json:"abort_rate"`
	ConflictAborts   uint64   `json:"conflict_aborts"`
	CapacityAborts   uint64   `json:"capacity_aborts"`
	FallbackAborts   uint64   `json:"fallback_aborts"`
	FallbackRuns     uint64   `json:"fallback_runs"`
	PerWorkerCommits []uint64 `json:"per_worker_commits"`
}

// ShardStatus is one shard's slice of the fleet: its configuration and
// tuner state plus its transaction statistics and queue occupancy.
type ShardStatus struct {
	Index         int    `json:"index"`
	Config        string `json:"config"`
	Phases        int    `json:"phases"`
	Exploring     bool   `json:"exploring"`
	ActiveWorkers int    `json:"active_workers"`
	QueueLen      int    `json:"queue_len"`
	FenceHeld     bool   `json:"fence_held"`
	// FenceEpoch is the shard's fence acquisition counter (monotonic;
	// each cross-shard hold of this shard bumps it). Breaker is the
	// shard's circuit-breaker state: closed, open or half-open.
	FenceEpoch uint64 `json:"fence_epoch"`
	Breaker    string `json:"breaker"`
	// OpsRouted counts data operations admitted to this shard — the
	// per-shard load signal a split-heaviest rebalance plan
	// (shard.RangePartitioner.SplitHeaviest) consumes.
	OpsRouted uint64   `json:"ops_routed"`
	TM        TMStatus `json:"tm"`
}

// OpsStatus counts served operations by kind, plus admission and
// cross-shard commit outcomes.
type OpsStatus struct {
	Served    map[string]uint64 `json:"served"`
	Total     uint64            `json:"total"`
	Rejected  uint64            `json:"rejected"`
	Requeued  uint64            `json:"requeued"`
	HookFires uint64            `json:"reconfigure_hook_fires"`
	Drains    uint64            `json:"drains"`
	// ShedDeadline counts queued ops dropped unexecuted (deadline passed
	// or client hung up); ShedLatency counts admissions rejected because
	// queue-wait p99 crossed the SLO budget — the two tail-latency shed
	// paths beside the queue-depth Rejected.
	ShedDeadline uint64 `json:"shed_deadline"`
	ShedLatency  uint64 `json:"shed_latency"`
	// CrossOps counts committed cross-shard (multi-participant) commits;
	// CrossAborts counts abort-all retries of the acquire phase; Fenced
	// counts local operations requeued because a fence was held.
	CrossOps    uint64 `json:"cross_ops"`
	CrossAborts uint64 `json:"cross_aborts"`
	Fenced      uint64 `json:"fenced_requeues"`
	// CrossBackoffMs totals the acquire-phase backoff sleeps (capped
	// exponential with seeded jitter) across all coordinators.
	CrossBackoffMs float64 `json:"cross_backoff_ms"`
	// CrossCrashes counts injected coordinator crashes (fault
	// substrate); FenceRecovered counts orphaned fence batches the
	// failure detector recovered — FenceRolledForward of them re-applied
	// as decided writes, FenceAborted released with nothing applied.
	CrossCrashes       uint64 `json:"cross_crashes"`
	FenceRecovered     uint64 `json:"fence_recovered"`
	FenceRolledForward uint64 `json:"fence_rolled_forward"`
	FenceAborted       uint64 `json:"fence_aborted"`
	// BreakerOpenTotal counts circuit-breaker open transitions across
	// shards; BreakerShed counts admissions shed (503 + Retry-After)
	// while a breaker was open.
	BreakerOpenTotal uint64 `json:"breaker_open_total"`
	BreakerShed      uint64 `json:"breaker_shed"`
	// Faults reports per-rule fault-injection fire counts (absent
	// without an armed injector).
	Faults map[string]uint64 `json:"faults,omitempty"`
	// RangeLocal counts scans whose owner set collapsed to one shard (no
	// fences taken); RangeCross counts scans that ran the cross-shard
	// protocol, fencing RangeFencedShards shards in total. The scan-
	// locality observables the hash-vs-range partitioner A/B compares.
	RangeLocal        uint64 `json:"range_local"`
	RangeCross        uint64 `json:"range_cross"`
	RangeFencedShards uint64 `json:"range_fenced_shards"`
	// GroupCommits counts worker-gate batches that coalesced two or more
	// queued ops into one TM transaction; GroupBatchP50/P99 summarize the
	// batch-size distribution over the sliding window. The amortization
	// observables the group-commit A/B compares.
	GroupCommits  uint64  `json:"group_commits"`
	GroupBatchP50 float64 `json:"group_batch_p50"`
	GroupBatchP99 float64 `json:"group_batch_p99"`
	// FenceKeysHeld sums the keyed fence table occupancy across shards at
	// snapshot time (identically 0 under --fence-granularity=shard).
	FenceKeysHeld uint64 `json:"fence_keys_held"`
	// Reshards counts installed split flips and Merges installed merge
	// flips; KeysMigrated totals the key-value pairs moved by either;
	// MovedBounces counts operations that hit a donor's bumped
	// placement-epoch word and were re-routed under the new placement.
	// ShardsRetired counts donor and spare shards drained and stopped for
	// good; RangeConservative counts hash-partitioner scans whose owner
	// set fell back to every shard because the interval was wider than
	// shard.RangeEnumCap (the over-fencing the range partitioner avoids).
	Reshards          uint64 `json:"reshards"`
	Merges            uint64 `json:"merges"`
	KeysMigrated      uint64 `json:"keys_migrated"`
	MovedBounces      uint64 `json:"moved_bounces"`
	ShardsRetired     uint64 `json:"shards_retired"`
	RangeConservative uint64 `json:"range_conservative"`
}

// LatencyStatus summarizes one latency dimension in milliseconds over the
// sliding reservoir window.
type LatencyStatus struct {
	metrics.Summary
	// WindowObserved is the total number of requests ever observed (the
	// summary covers only the most recent window of them).
	WindowObserved uint64 `json:"window_observed"`
}

// ReconfigStatus is one optimization-phase event of one shard.
type ReconfigStatus struct {
	Shard  int     `json:"shard"`
	AtSec  float64 `json:"at_sec"`
	From   string  `json:"from"`
	To     string  `json:"to"`
	Reason string  `json:"reason"`
	Phase  int     `json:"phase"`
}

// TimelineStatus is one KPI observation of one shard's adapter thread.
type TimelineStatus struct {
	Shard     int     `json:"shard"`
	AtSec     float64 `json:"at_sec"`
	KPI       float64 `json:"kpi"`
	Config    string  `json:"config"`
	Exploring bool    `json:"exploring"`
}

// latencyStatus packages one reservoir.
func latencyStatus(r *metrics.Reservoir) LatencyStatus {
	return LatencyStatus{Summary: metrics.Summarize(r.Snapshot()), WindowObserved: r.Count()}
}

// StatusSnapshot assembles the full status document. It synchronizes with
// every shard's worker threads the same way Stats does, so it must not be
// called from inside an atomic block.
func (s *Server) StatusSnapshot() Status {
	// Snapshot the placement and the fleet once: a concurrent reshard may
	// flip either mid-assembly, and the document must be internally
	// consistent (the fleet is always a superset of what the snapshotted
	// placement names).
	part, epoch := s.place.Load()
	fleetShards := s.fleet()
	var spanStarts []uint64
	var spanOwners []int
	if rp, ok := part.(*shard.RangePartitioner); ok {
		spanStarts, spanOwners = rp.Spans()
	}

	var fleet TMStatus
	shards := make([]ShardStatus, len(fleetShards))
	var reconfigs []ReconfigStatus
	var timeline []TimelineStatus
	phases := 0
	exploring := false
	activeWorkers, queueLen := 0, 0
	configs := map[string]bool{}

	for i, ss := range fleetShards {
		perWorker := ss.sys.StatsPerWorker()
		var tm TMStatus
		commits := make([]uint64, len(perWorker))
		for j, st := range perWorker {
			commits[j] = st.Commits
			tm.Commits += st.Commits
			tm.Aborts += st.Aborts
			tm.ConflictAborts += st.ConflictAborts
			tm.CapacityAborts += st.CapacityAborts
			tm.FallbackAborts += st.FallbackAborts
			tm.FallbackRuns += st.FallbackRuns
		}
		if att := tm.Commits + tm.Aborts; att > 0 {
			tm.AbortRate = float64(tm.Aborts) / float64(att)
		}
		tm.PerWorkerCommits = commits

		fleet.Commits += tm.Commits
		fleet.Aborts += tm.Aborts
		fleet.ConflictAborts += tm.ConflictAborts
		fleet.CapacityAborts += tm.CapacityAborts
		fleet.FallbackAborts += tm.FallbackAborts
		fleet.FallbackRuns += tm.FallbackRuns
		fleet.PerWorkerCommits = append(fleet.PerWorkerCommits, commits...)

		cfg := ss.sys.CurrentConfig().String()
		configs[cfg] = true
		shPhases := ss.sys.Phases()
		phases += shPhases
		shExploring := ss.sys.Exploring()
		exploring = exploring || shExploring
		act := int(ss.active.Load())
		activeWorkers += act
		qn := len(ss.queue)
		queueLen += qn

		shards[i] = ShardStatus{
			Index:         i,
			Config:        cfg,
			Phases:        shPhases,
			Exploring:     shExploring,
			ActiveWorkers: act,
			QueueLen:      qn,
			FenceHeld:     ss.sys.Load(ss.store.FenceWord()) != 0,
			FenceEpoch:    ss.sys.Load(ss.store.FenceEpochWord()),
			Breaker:       ss.breakerName(time.Now()),
			OpsRouted:     ss.routed.Load(),
			TM:            tm,
		}

		for _, e := range ss.sys.Reconfigurations() {
			reconfigs = append(reconfigs, ReconfigStatus{
				Shard:  i,
				AtSec:  e.At.Seconds(),
				From:   e.From.String(),
				To:     e.To.String(),
				Reason: e.Reason,
				Phase:  e.Phase,
			})
		}
		tl := ss.sys.Timeline()
		if tail := s.opts.TimelineTail; len(tl) > tail {
			tl = tl[len(tl)-tail:]
		}
		for _, p := range tl {
			timeline = append(timeline, TimelineStatus{
				Shard:     i,
				AtSec:     p.At.Seconds(),
				KPI:       p.KPI,
				Config:    p.Config.String(),
				Exploring: p.Exploring,
			})
		}
	}
	if att := fleet.Commits + fleet.Aborts; att > 0 {
		fleet.AbortRate = float64(fleet.Aborts) / float64(att)
	}
	sort.SliceStable(reconfigs, func(i, j int) bool { return reconfigs[i].AtSec < reconfigs[j].AtSec })
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].AtSec < timeline[j].AtSec })
	if reconfigs == nil {
		reconfigs = []ReconfigStatus{}
	}
	if timeline == nil {
		timeline = []TimelineStatus{}
	}

	served := make(map[string]uint64, numOps)
	var servedTotal uint64
	for op := opKind(0); op < numOps; op++ {
		n := s.served[op].Load()
		served[opNames[op]] = n
		servedTotal += n
	}

	var fenceKeysHeld uint64
	for _, ss := range fleetShards {
		fenceKeysHeld += ss.sys.Load(ss.store.FenceOccWord())
	}
	batch := metrics.Summarize(s.batchSizes.Snapshot())

	return Status{
		Server: ServerStatus{
			UptimeSec:        time.Since(s.start).Seconds(),
			Shards:           len(fleetShards),
			Partitioner:      part.Kind(),
			KeyUniverse:      s.opts.KeyUniverse,
			Workers:          s.opts.Workers,
			ActiveWorkers:    activeWorkers,
			QueueDepth:       s.opts.QueueDepth,
			QueueLen:         queueLen,
			SLOP99Ms:         float64(s.opts.SLOP99) / float64(time.Millisecond),
			DeadlineMs:       float64(s.opts.Deadline) / float64(time.Millisecond),
			FenceDeadlineMs:  float64(s.opts.FenceDeadline) / float64(time.Millisecond),
			PartitionerEpoch: epoch,
			Resharding:       s.resharding.Load(),
			SpareShards:      max(0, len(fleetShards)-part.Shards()),
			SpanStarts:       spanStarts,
			SpanOwners:       spanOwners,
		},
		Config: ConfigStatus{
			Current:   fleetShards[0].sys.CurrentConfig().String(),
			Distinct:  len(configs),
			AutoTune:  s.opts.AutoTune,
			Phases:    phases,
			Exploring: exploring,
		},
		TM: fleet,
		Ops: OpsStatus{
			Served:             served,
			Total:              servedTotal,
			Rejected:           s.rejected.Load(),
			Requeued:           s.requeued.Load(),
			HookFires:          s.hookFires.Load(),
			Drains:             s.drains.Load(),
			ShedDeadline:       s.shedDeadline.Load(),
			ShedLatency:        s.shedLatency.Load(),
			CrossOps:           s.crossOps.Load(),
			CrossAborts:        s.crossAborts.Load(),
			Fenced:             s.fenced.Load(),
			CrossBackoffMs:     float64(s.crossBackoffNs.Load()) / 1e6,
			CrossCrashes:       s.crossCrashes.Load(),
			FenceRecovered:     s.fenceRecovered.Load(),
			FenceRolledForward: s.fenceRolledForward.Load(),
			FenceAborted:       s.fenceAborted.Load(),
			BreakerOpenTotal:   s.breakerOpenTotal.Load(),
			BreakerShed:        s.breakerShed.Load(),
			Faults:             s.opts.Fault.Snapshot(),
			RangeLocal:         s.rangeLocal.Load(),
			RangeCross:         s.rangeCross.Load(),
			RangeFencedShards:  s.rangeFencedShards.Load(),
			GroupCommits:       s.groupCommits.Load(),
			GroupBatchP50:      batch.P50,
			GroupBatchP99:      batch.P99,
			FenceKeysHeld:      fenceKeysHeld,
			Reshards:           s.reshards.Load(),
			Merges:             s.merges.Load(),
			KeysMigrated:       s.keysMigrated.Load(),
			MovedBounces:       s.movedBounces.Load(),
			ShardsRetired:      s.shardsRetired.Load(),
			RangeConservative:  s.rangeConservative.Load(),
		},
		Latency:          latencyStatus(s.lat),
		QueueWait:        latencyStatus(s.queueWait),
		Service:          latencyStatus(s.svc),
		Shards:           shards,
		Reconfigurations: reconfigs,
		Timeline:         timeline,
	}
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.StatusSnapshot())
}
