package core

import (
	"sync"
	"time"
)

// Clock abstracts the runtime's time source so experiments can be replayed
// deterministically. The adapter thread measures KPI windows against
// Clock.Now; under a VirtualClock those windows are driven by the harness
// advancing time, not by the wall clock, so a fixed seed yields the same
// KPI stream — and hence the same CUSUM alarms and exploration traces — on
// every run (the "virtual time" option of the scenario harness).
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks for d of this clock's time. A VirtualClock returns
	// immediately after advancing itself.
	Sleep(d time.Duration)
}

// realClock is the wall clock.
type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealTime returns the wall clock (the default Clock).
func RealTime() Clock { return realClock{} }

// VirtualClock is a manually advanced clock: Now returns a logical time
// that moves only through Advance or Sleep. Concurrency-safe, though the
// deterministic harness drives it from a single goroutine.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at start (the zero time is fine:
// only durations between readings matter).
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the virtual time and returning
// immediately.
func (c *VirtualClock) Sleep(d time.Duration) { c.Advance(d) }

// Advance moves the virtual time forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
