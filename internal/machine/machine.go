// Package machine defines the two machine profiles of the paper's test-bed
// (Table 2) and the TM configuration spaces tuned on each (Table 3). A
// profile fixes the set of configurations that form the columns of RecTM's
// Utility Matrix, plus the hardware parameters used by the analytic
// performance and energy models.
package machine

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/htm"
)

// Profile describes one machine of the experimental test-bed.
type Profile struct {
	// Name identifies the profile ("A" or "B").
	Name string
	// Cores is the number of physical cores; HWThreads includes SMT.
	Cores, HWThreads int
	// Sockets is the number of NUMA domains (1 on Machine A, 4 on B).
	Sockets int
	// HasHTM reports hardware TM support (TSX on Machine A).
	HasHTM bool
	// HasRAPL reports energy-measurement support.
	HasRAPL bool
	// ThreadCounts is the tuned parallelism-degree dimension.
	ThreadCounts []int
	// Budgets and Policies are the HTM contention-management dimensions
	// (empty when HasHTM is false).
	Budgets  []int
	Policies []htm.CapacityPolicy

	// Power-model parameters for the RAPL substitute (see
	// internal/energy): package static power and per-active-thread
	// dynamic power, in watts.
	StaticPower, PowerPerThread float64
}

// A is the paper's Machine A: 1× Intel Haswell Xeon E3-1275, 4 cores / 8
// hyper-threads, TSX and RAPL available.
func A() Profile {
	return Profile{
		Name:           "A",
		Cores:          4,
		HWThreads:      8,
		Sockets:        1,
		HasHTM:         true,
		HasRAPL:        true,
		ThreadCounts:   []int{1, 2, 3, 4, 5, 6, 7, 8},
		Budgets:        []int{1, 2, 4, 8, 16, 20},
		Policies:       []htm.CapacityPolicy{htm.PolicyGiveUp, htm.PolicyDecrease, htm.PolicyHalve},
		StaticPower:    18,
		PowerPerThread: 6.5,
	}
}

// B is the paper's Machine B: 4× AMD Opteron 6172, 48 cores, no HTM, no
// RAPL.
func B() Profile {
	return Profile{
		Name:           "B",
		Cores:          48,
		HWThreads:      48,
		Sockets:        4,
		HasHTM:         false,
		HasRAPL:        false,
		ThreadCounts:   []int{1, 2, 4, 6, 8, 16, 32, 48},
		StaticPower:    140,
		PowerPerThread: 4.2,
	}
}

// stms is the STM dimension tuned on both machines (Table 3).
var stms = []config.AlgID{config.TinySTM, config.SwissTM, config.NOrec, config.TL2}

// Configs enumerates the tuned configuration space of the profile: every
// (STM × thread-count), plus on HTM machines every (HTM × thread-count ×
// budget × capacity-policy) with the budget-1 policies deduplicated (all
// three behave identically when a single attempt is allowed). Hybrids are
// excluded, as in the paper (§6 footnote 4). On Machine A this yields 152
// configurations (the paper reports 130 with its budget subset) and on
// Machine B exactly the paper's 32.
func (p Profile) Configs() []config.Config {
	var out []config.Config
	for _, alg := range stms {
		for _, t := range p.ThreadCounts {
			out = append(out, config.Config{Alg: alg, Threads: t})
		}
	}
	if p.HasHTM {
		for _, t := range p.ThreadCounts {
			for _, b := range p.Budgets {
				if b <= 1 {
					out = append(out, config.Config{Alg: config.HTM, Threads: t, Budget: b, Policy: htm.PolicyGiveUp})
					continue
				}
				for _, pol := range p.Policies {
					out = append(out, config.Config{Alg: config.HTM, Threads: t, Budget: b, Policy: pol})
				}
			}
		}
	}
	return out
}

// MaxThreads returns the largest tuned thread count.
func (p Profile) MaxThreads() int {
	max := 1
	for _, t := range p.ThreadCounts {
		if t > max {
			max = t
		}
	}
	return max
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, error) {
	switch name {
	case "A", "a":
		return A(), nil
	case "B", "b":
		return B(), nil
	}
	return Profile{}, fmt.Errorf("machine: unknown profile %q (want A or B)", name)
}
