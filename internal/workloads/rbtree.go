package workloads

import "repro/internal/tm"

// RBTree is the concurrent red-black tree benchmark: a sorted map stored in
// the transactional heap, exercised with a configurable mix of lookups,
// inserts and deletes over a bounded key range (the paper's "Red-Black
// Tree" data-structure workload, whose optimum flips between HTM tunings
// and STMs as the update ratio and range change).
type RBTree struct {
	// KeyRange bounds the keys (default 1 << 14).
	KeyRange int
	// UpdateRatio is the fraction of operations that mutate (default
	// 0.2); mutations split evenly between insert and delete.
	UpdateRatio float64
	// InitialSize pre-populates the tree (default KeyRange/2).
	InitialSize int

	set *RBSet
}

// Name implements Workload.
func (t *RBTree) Name() string { return "rbtree" }

func (t *RBTree) params() (keyRange, initial int, update float64) {
	keyRange = t.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 14
	}
	initial = t.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	update = t.UpdateRatio
	if update == 0 {
		update = 0.2
	}
	return
}

// Setup implements Workload.
func (t *RBTree) Setup(h *tm.Heap, rng *Rand) error {
	keyRange, initial, _ := t.params()
	set, err := NewRBSet(h)
	if err != nil {
		return err
	}
	t.set = set
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(keyRange))
		seq.Atomic(0, func(tx tm.Txn) { t.set.Insert(tx, 0, k, k) })
	}
	return nil
}

// Op implements Workload.
func (t *RBTree) Op(r Runner, self int, rng *Rand) {
	keyRange, _, update := t.params()
	k := uint64(rng.Intn(keyRange))
	p := rng.Float64()
	switch {
	case p < update/2:
		r.Atomic(self, func(tx tm.Txn) { t.set.Insert(tx, self, k, k) })
	case p < update:
		r.Atomic(self, func(tx tm.Txn) { t.set.Delete(tx, self, k) })
	default:
		r.Atomic(self, func(tx tm.Txn) { t.set.Contains(tx, k) })
	}
}

// Set exposes the underlying RBSet (for validation in tests).
func (t *RBTree) Set() *RBSet { return t.set }

// --- Red-black tree implementation over the transactional heap --------------

// Node layout (7 words): key, val, left, right, parent, color, pad.
const (
	rbKey = iota
	rbVal
	rbLeft
	rbRight
	rbParent
	rbColor
	rbPad
	rbNodeWords
)

const (
	rbRed   = 0
	rbBlack = 1
)

// RBSet is a red-black-tree map with transactional operations. The root
// pointer lives in a heap word so the whole structure is TM-managed.
// Deleted nodes are recycled through a NodePool.
type RBSet struct {
	h    *tm.Heap
	root tm.Addr // heap word holding the root node address
	pool *NodePool
}

// NewRBSet allocates an empty set.
func NewRBSet(h *tm.Heap) (*RBSet, error) {
	root, err := h.Alloc(1)
	if err != nil {
		return nil, err
	}
	pool, err := NewNodePool(h, rbNodeWords, rbPad)
	if err != nil {
		return nil, err
	}
	return &RBSet{h: h, root: root, pool: pool}, nil
}

// Contains reports whether key k is present.
func (s *RBSet) Contains(tx tm.Txn, k uint64) bool {
	n := tm.Addr(tx.Load(s.root))
	for n != tm.NilAddr {
		nk := tx.Load(n + rbKey)
		switch {
		case k == nk:
			return true
		case k < nk:
			n = tm.Addr(tx.Load(n + rbLeft))
		default:
			n = tm.Addr(tx.Load(n + rbRight))
		}
	}
	return false
}

// Get returns the value stored at k.
func (s *RBSet) Get(tx tm.Txn, k uint64) (uint64, bool) {
	n := tm.Addr(tx.Load(s.root))
	for n != tm.NilAddr {
		nk := tx.Load(n + rbKey)
		switch {
		case k == nk:
			return tx.Load(n + rbVal), true
		case k < nk:
			n = tm.Addr(tx.Load(n + rbLeft))
		default:
			n = tm.Addr(tx.Load(n + rbRight))
		}
	}
	return 0, false
}

// Insert adds or updates key k on behalf of worker slot self; it returns
// false if the key already existed (in which case only the value is
// updated).
func (s *RBSet) Insert(tx tm.Txn, self int, k, v uint64) bool {
	var parent tm.Addr
	n := tm.Addr(tx.Load(s.root))
	for n != tm.NilAddr {
		nk := tx.Load(n + rbKey)
		if k == nk {
			tx.Store(n+rbVal, v)
			return false
		}
		parent = n
		if k < nk {
			n = tm.Addr(tx.Load(n + rbLeft))
		} else {
			n = tm.Addr(tx.Load(n + rbRight))
		}
	}
	fresh := s.pool.Get(tx, self)
	tx.Store(fresh+rbKey, k)
	tx.Store(fresh+rbVal, v)
	tx.Store(fresh+rbLeft, uint64(tm.NilAddr))
	tx.Store(fresh+rbRight, uint64(tm.NilAddr))
	tx.Store(fresh+rbParent, uint64(parent))
	tx.Store(fresh+rbColor, rbRed)
	if parent == tm.NilAddr {
		tx.Store(s.root, uint64(fresh))
	} else if k < tx.Load(parent+rbKey) {
		tx.Store(parent+rbLeft, uint64(fresh))
	} else {
		tx.Store(parent+rbRight, uint64(fresh))
	}
	s.insertFixup(tx, fresh)
	return true
}

func (s *RBSet) insertFixup(tx tm.Txn, z tm.Addr) {
	for {
		p := tm.Addr(tx.Load(z + rbParent))
		if p == tm.NilAddr || tx.Load(p+rbColor) != rbRed {
			break
		}
		g := tm.Addr(tx.Load(p + rbParent))
		if g == tm.NilAddr {
			break
		}
		if p == tm.Addr(tx.Load(g+rbLeft)) {
			y := tm.Addr(tx.Load(g + rbRight))
			if y != tm.NilAddr && tx.Load(y+rbColor) == rbRed {
				tx.Store(p+rbColor, rbBlack)
				tx.Store(y+rbColor, rbBlack)
				tx.Store(g+rbColor, rbRed)
				z = g
				continue
			}
			if z == tm.Addr(tx.Load(p+rbRight)) {
				z = p
				s.rotateLeft(tx, z)
				p = tm.Addr(tx.Load(z + rbParent))
				g = tm.Addr(tx.Load(p + rbParent))
			}
			tx.Store(p+rbColor, rbBlack)
			tx.Store(g+rbColor, rbRed)
			s.rotateRight(tx, g)
		} else {
			y := tm.Addr(tx.Load(g + rbLeft))
			if y != tm.NilAddr && tx.Load(y+rbColor) == rbRed {
				tx.Store(p+rbColor, rbBlack)
				tx.Store(y+rbColor, rbBlack)
				tx.Store(g+rbColor, rbRed)
				z = g
				continue
			}
			if z == tm.Addr(tx.Load(p+rbLeft)) {
				z = p
				s.rotateRight(tx, z)
				p = tm.Addr(tx.Load(z + rbParent))
				g = tm.Addr(tx.Load(p + rbParent))
			}
			tx.Store(p+rbColor, rbBlack)
			tx.Store(g+rbColor, rbRed)
			s.rotateLeft(tx, g)
		}
	}
	root := tm.Addr(tx.Load(s.root))
	tx.Store(root+rbColor, rbBlack)
}

func (s *RBSet) rotateLeft(tx tm.Txn, x tm.Addr) {
	y := tm.Addr(tx.Load(x + rbRight))
	yl := tm.Addr(tx.Load(y + rbLeft))
	tx.Store(x+rbRight, uint64(yl))
	if yl != tm.NilAddr {
		tx.Store(yl+rbParent, uint64(x))
	}
	xp := tm.Addr(tx.Load(x + rbParent))
	tx.Store(y+rbParent, uint64(xp))
	switch {
	case xp == tm.NilAddr:
		tx.Store(s.root, uint64(y))
	case x == tm.Addr(tx.Load(xp+rbLeft)):
		tx.Store(xp+rbLeft, uint64(y))
	default:
		tx.Store(xp+rbRight, uint64(y))
	}
	tx.Store(y+rbLeft, uint64(x))
	tx.Store(x+rbParent, uint64(y))
}

func (s *RBSet) rotateRight(tx tm.Txn, x tm.Addr) {
	y := tm.Addr(tx.Load(x + rbLeft))
	yr := tm.Addr(tx.Load(y + rbRight))
	tx.Store(x+rbLeft, uint64(yr))
	if yr != tm.NilAddr {
		tx.Store(yr+rbParent, uint64(x))
	}
	xp := tm.Addr(tx.Load(x + rbParent))
	tx.Store(y+rbParent, uint64(xp))
	switch {
	case xp == tm.NilAddr:
		tx.Store(s.root, uint64(y))
	case x == tm.Addr(tx.Load(xp+rbRight)):
		tx.Store(xp+rbRight, uint64(y))
	default:
		tx.Store(xp+rbLeft, uint64(y))
	}
	tx.Store(y+rbRight, uint64(x))
	tx.Store(x+rbParent, uint64(y))
}

// Delete removes key k on behalf of worker slot self, reporting whether it
// was present.
func (s *RBSet) Delete(tx tm.Txn, self int, k uint64) bool {
	z := tm.Addr(tx.Load(s.root))
	for z != tm.NilAddr {
		zk := tx.Load(z + rbKey)
		if k == zk {
			break
		}
		if k < zk {
			z = tm.Addr(tx.Load(z + rbLeft))
		} else {
			z = tm.Addr(tx.Load(z + rbRight))
		}
	}
	if z == tm.NilAddr {
		return false
	}
	// CLRS delete: y is the node actually unlinked.
	y := z
	yColor := tx.Load(y + rbColor)
	var x, xParent tm.Addr
	if tm.Addr(tx.Load(z+rbLeft)) == tm.NilAddr {
		x = tm.Addr(tx.Load(z + rbRight))
		xParent = tm.Addr(tx.Load(z + rbParent))
		s.transplant(tx, z, x)
	} else if tm.Addr(tx.Load(z+rbRight)) == tm.NilAddr {
		x = tm.Addr(tx.Load(z + rbLeft))
		xParent = tm.Addr(tx.Load(z + rbParent))
		s.transplant(tx, z, x)
	} else {
		y = s.minimum(tx, tm.Addr(tx.Load(z+rbRight)))
		yColor = tx.Load(y + rbColor)
		x = tm.Addr(tx.Load(y + rbRight))
		if tm.Addr(tx.Load(y+rbParent)) == z {
			xParent = y
			if x != tm.NilAddr {
				tx.Store(x+rbParent, uint64(y))
			}
		} else {
			xParent = tm.Addr(tx.Load(y + rbParent))
			s.transplant(tx, y, x)
			zr := tm.Addr(tx.Load(z + rbRight))
			tx.Store(y+rbRight, uint64(zr))
			tx.Store(zr+rbParent, uint64(y))
		}
		s.transplant(tx, z, y)
		zl := tm.Addr(tx.Load(z + rbLeft))
		tx.Store(y+rbLeft, uint64(zl))
		tx.Store(zl+rbParent, uint64(y))
		tx.Store(y+rbColor, tx.Load(z+rbColor))
	}
	if yColor == rbBlack {
		s.deleteFixup(tx, x, xParent)
	}
	s.pool.Put(tx, self, z)
	return true
}

// transplant replaces subtree u with subtree v in u's parent.
func (s *RBSet) transplant(tx tm.Txn, u, v tm.Addr) {
	up := tm.Addr(tx.Load(u + rbParent))
	switch {
	case up == tm.NilAddr:
		tx.Store(s.root, uint64(v))
	case u == tm.Addr(tx.Load(up+rbLeft)):
		tx.Store(up+rbLeft, uint64(v))
	default:
		tx.Store(up+rbRight, uint64(v))
	}
	if v != tm.NilAddr {
		tx.Store(v+rbParent, uint64(up))
	}
}

func (s *RBSet) minimum(tx tm.Txn, n tm.Addr) tm.Addr {
	for {
		l := tm.Addr(tx.Load(n + rbLeft))
		if l == tm.NilAddr {
			return n
		}
		n = l
	}
}

// color reads a node color treating nil as black.
func (s *RBSet) color(tx tm.Txn, n tm.Addr) uint64 {
	if n == tm.NilAddr {
		return rbBlack
	}
	return tx.Load(n + rbColor)
}

func (s *RBSet) setColor(tx tm.Txn, n tm.Addr, c uint64) {
	if n != tm.NilAddr {
		tx.Store(n+rbColor, c)
	}
}

// deleteFixup restores the red-black properties after removing a black
// node. x may be nil; xParent tracks its parent explicitly (no sentinel
// node in the heap representation).
func (s *RBSet) deleteFixup(tx tm.Txn, x, xParent tm.Addr) {
	for x != tm.Addr(tx.Load(s.root)) && s.color(tx, x) == rbBlack {
		if xParent == tm.NilAddr {
			break
		}
		if x == tm.Addr(tx.Load(xParent+rbLeft)) {
			w := tm.Addr(tx.Load(xParent + rbRight))
			if s.color(tx, w) == rbRed {
				s.setColor(tx, w, rbBlack)
				s.setColor(tx, xParent, rbRed)
				s.rotateLeft(tx, xParent)
				w = tm.Addr(tx.Load(xParent + rbRight))
			}
			if w == tm.NilAddr {
				x = xParent
				xParent = tm.Addr(tx.Load(x + rbParent))
				continue
			}
			wl := tm.Addr(tx.Load(w + rbLeft))
			wr := tm.Addr(tx.Load(w + rbRight))
			if s.color(tx, wl) == rbBlack && s.color(tx, wr) == rbBlack {
				s.setColor(tx, w, rbRed)
				x = xParent
				xParent = tm.Addr(tx.Load(x + rbParent))
				continue
			}
			if s.color(tx, wr) == rbBlack {
				s.setColor(tx, wl, rbBlack)
				s.setColor(tx, w, rbRed)
				s.rotateRight(tx, w)
				w = tm.Addr(tx.Load(xParent + rbRight))
			}
			s.setColor(tx, w, s.color(tx, xParent))
			s.setColor(tx, xParent, rbBlack)
			s.setColor(tx, tm.Addr(tx.Load(w+rbRight)), rbBlack)
			s.rotateLeft(tx, xParent)
			x = tm.Addr(tx.Load(s.root))
			break
		}
		// Mirror case.
		w := tm.Addr(tx.Load(xParent + rbLeft))
		if s.color(tx, w) == rbRed {
			s.setColor(tx, w, rbBlack)
			s.setColor(tx, xParent, rbRed)
			s.rotateRight(tx, xParent)
			w = tm.Addr(tx.Load(xParent + rbLeft))
		}
		if w == tm.NilAddr {
			x = xParent
			xParent = tm.Addr(tx.Load(x + rbParent))
			continue
		}
		wl := tm.Addr(tx.Load(w + rbLeft))
		wr := tm.Addr(tx.Load(w + rbRight))
		if s.color(tx, wr) == rbBlack && s.color(tx, wl) == rbBlack {
			s.setColor(tx, w, rbRed)
			x = xParent
			xParent = tm.Addr(tx.Load(x + rbParent))
			continue
		}
		if s.color(tx, wl) == rbBlack {
			s.setColor(tx, wr, rbBlack)
			s.setColor(tx, w, rbRed)
			s.rotateLeft(tx, w)
			w = tm.Addr(tx.Load(xParent + rbLeft))
		}
		s.setColor(tx, w, s.color(tx, xParent))
		s.setColor(tx, xParent, rbBlack)
		s.setColor(tx, tm.Addr(tx.Load(w+rbLeft)), rbBlack)
		s.rotateRight(tx, xParent)
		x = tm.Addr(tx.Load(s.root))
		break
	}
	s.setColor(tx, x, rbBlack)
}

// AscendRange visits every key in [lo, hi] in ascending order, calling
// visit for each; visiting stops early when visit returns false. The whole
// scan runs inside the caller's transaction, so its read set grows with
// the span — the "scan" service phase uses exactly that to shift the
// workload's TM-capacity profile.
func (s *RBSet) AscendRange(tx tm.Txn, lo, hi uint64, visit func(k, v uint64) bool) {
	s.ascendFrom(tx, tm.Addr(tx.Load(s.root)), lo, hi, visit)
}

func (s *RBSet) ascendFrom(tx tm.Txn, n tm.Addr, lo, hi uint64, visit func(k, v uint64) bool) bool {
	if n == tm.NilAddr {
		return true
	}
	k := tx.Load(n + rbKey)
	if k > lo {
		if !s.ascendFrom(tx, tm.Addr(tx.Load(n+rbLeft)), lo, hi, visit) {
			return false
		}
	}
	if k >= lo && k <= hi {
		if !visit(k, tx.Load(n+rbVal)) {
			return false
		}
	}
	if k < hi {
		return s.ascendFrom(tx, tm.Addr(tx.Load(n+rbRight)), lo, hi, visit)
	}
	return true
}

// Size counts keys (read-only transaction helper).
func (s *RBSet) Size(tx tm.Txn) int {
	return s.sizeFrom(tx, tm.Addr(tx.Load(s.root)))
}

func (s *RBSet) sizeFrom(tx tm.Txn, n tm.Addr) int {
	if n == tm.NilAddr {
		return 0
	}
	return 1 + s.sizeFrom(tx, tm.Addr(tx.Load(n+rbLeft))) + s.sizeFrom(tx, tm.Addr(tx.Load(n+rbRight)))
}
