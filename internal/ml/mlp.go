package ml

import "math"

// MLP is a one-hidden-layer perceptron with tanh activations and a softmax
// output over the classes present in training, trained by SGD with
// cross-entropy loss — the "Artificial Neural Networks (MLP)" baseline.
type MLP struct {
	// Hidden is the hidden-layer width (default 16).
	Hidden int
	// Epochs is the number of SGD sweeps (default 200).
	Epochs int
	// LR is the learning rate (default 0.01).
	LR float64
	// Seed makes initialization deterministic.
	Seed uint64

	classes  []int
	classIdx map[int]int
	w1       [][]float64 // hidden × features
	b1       []float64
	w2       [][]float64 // classes × hidden
	b2       []float64
	mean     []float64
	std      []float64
}

// Name implements Classifier.
func (m *MLP) Name() string { return "MLP" }

// Fit implements Classifier.
func (m *MLP) Fit(x [][]float64, y []int) {
	hidden := m.Hidden
	if hidden <= 0 {
		hidden = 16
	}
	epochs := m.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	lr := m.LR
	if lr == 0 {
		lr = 0.01
	}
	m.mean, m.std = standardFit(x)
	xs := standardApply(x, m.mean, m.std)

	m.classIdx = map[int]int{}
	m.classes = m.classes[:0]
	for _, c := range y {
		if _, ok := m.classIdx[c]; !ok {
			m.classIdx[c] = len(m.classes)
			m.classes = append(m.classes, c)
		}
	}
	nc := len(m.classes)
	nf := 0
	if len(xs) > 0 {
		nf = len(xs[0])
	}
	rng := m.Seed ^ 0xBF58476D1CE4E5B9
	if rng == 0 {
		rng = 1
	}
	randf := func() float64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return (float64(rng%2000)/1000 - 1) * 0.3
	}
	m.w1 = make([][]float64, hidden)
	m.b1 = make([]float64, hidden)
	for h := range m.w1 {
		m.w1[h] = make([]float64, nf)
		for f := range m.w1[h] {
			m.w1[h][f] = randf()
		}
	}
	m.w2 = make([][]float64, nc)
	m.b2 = make([]float64, nc)
	for c := range m.w2 {
		m.w2[c] = make([]float64, hidden)
		for h := range m.w2[c] {
			m.w2[c][h] = randf()
		}
	}

	hAct := make([]float64, hidden)
	probs := make([]float64, nc)
	for e := 0; e < epochs; e++ {
		for i, row := range xs {
			m.forward(row, hAct, probs)
			target := m.classIdx[y[i]]
			// Backprop: output layer gradient = probs − onehot.
			for c := 0; c < nc; c++ {
				grad := probs[c]
				if c == target {
					grad -= 1
				}
				for h := 0; h < hidden; h++ {
					m.w2[c][h] -= lr * grad * hAct[h]
				}
				m.b2[c] -= lr * grad
			}
			for h := 0; h < hidden; h++ {
				var up float64
				for c := 0; c < nc; c++ {
					grad := probs[c]
					if c == target {
						grad -= 1
					}
					up += grad * m.w2[c][h]
				}
				dh := up * (1 - hAct[h]*hAct[h]) // tanh'
				for f := 0; f < nf; f++ {
					m.w1[h][f] -= lr * dh * row[f]
				}
				m.b1[h] -= lr * dh
			}
		}
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if len(m.classes) == 0 {
		return 0
	}
	xs := standardRow(x, m.mean, m.std)
	hAct := make([]float64, len(m.w1))
	probs := make([]float64, len(m.classes))
	m.forward(xs, hAct, probs)
	best, bestP := 0, -1.0
	for c, p := range probs {
		if p > bestP {
			best, bestP = c, p
		}
	}
	return m.classes[best]
}

func (m *MLP) forward(x []float64, hAct, probs []float64) {
	for h := range m.w1 {
		s := m.b1[h]
		for f, w := range m.w1[h] {
			s += w * x[f]
		}
		hAct[h] = math.Tanh(s)
	}
	maxZ := math.Inf(-1)
	for c := range m.w2 {
		s := m.b2[c]
		for h, w := range m.w2[c] {
			s += w * hAct[h]
		}
		probs[c] = s
		if s > maxZ {
			maxZ = s
		}
	}
	sum := 0.0
	for c := range probs {
		probs[c] = math.Exp(probs[c] - maxZ)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
}
