package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/polytm"
	"repro/internal/stm"
	"repro/internal/tm"
	"repro/internal/workloads"
)

// Table4Result reproduces Table 4: the steady-state overhead PolyTM's
// dispatch adds over running the same TM algorithm bare, per algorithm and
// thread count, averaged over a benchmark mix. The "HTM-naive" column is the
// ablation of the dual-code-path optimization: HTM with fully instrumented
// accesses.
type Table4Result struct {
	Threads  []int
	Backends []string
	// OverheadPct[backend][thread] is (bare − poly)/bare · 100.
	OverheadPct [][]float64
}

// table4Backends pairs each backend label with its bare algorithm and the
// PolyTM algorithm id (HTM-naive is measured bare-vs-bare against plain
// HTM, isolating the instrumentation cost itself).
type table4Backend struct {
	label string
	alg   config.AlgID
}

// Table4 measures the dispatch overhead on this machine.
func Table4(scale Scale) (Table4Result, error) {
	threads := []int{1, 4, 8}
	backends := []table4Backend{
		{"TL2", config.TL2},
		{"NOrec", config.NOrec},
		{"Swiss", config.SwissTM},
		{"Tiny", config.TinySTM},
		{"HTM-opt", config.HTM},
	}
	res := Table4Result{Threads: threads}
	window := 250 * time.Millisecond
	if scale == Quick {
		window = 80 * time.Millisecond
	}

	mix := func() []workloads.Workload {
		return []workloads.Workload{
			&workloads.HashMap{Buckets: 1 << 10, KeyRange: 1 << 13},
			&workloads.RBTree{KeyRange: 1 << 12},
			&workloads.Vacation{Relations: 1 << 11, Queries: 12},
		}
	}

	for _, b := range backends {
		res.Backends = append(res.Backends, b.label)
		var row []float64
		for _, t := range threads {
			var rel float64
			n := 0
			for _, wl := range mix() {
				bare, poly, err := measurePair(wl, b.alg, t, window)
				if err != nil {
					return res, fmt.Errorf("table4 %s/%dt: %w", b.label, t, err)
				}
				rel += (bare - poly) / bare
				n++
			}
			row = append(row, 100*rel/float64(n))
		}
		res.OverheadPct = append(res.OverheadPct, row)
	}

	// HTM-naive: plain simulated HTM vs HTM with full instrumentation,
	// both bare (isolating the dual-path optimization's value).
	res.Backends = append(res.Backends, "HTM-naive")
	var naiveRow []float64
	for _, t := range threads {
		var rel float64
		n := 0
		for _, wl := range mix() {
			cm := htm.NewCM(5, htm.PolicyDecrease)
			fast, err := measureBare(wl, &htm.HTM{CM: cm}, t, window)
			if err != nil {
				return res, err
			}
			cm2 := htm.NewCM(5, htm.PolicyDecrease)
			slow, err := measureBare(wl, &htm.NaiveHTM{HTM: htm.HTM{CM: cm2}}, t, window)
			if err != nil {
				return res, err
			}
			rel += (fast - slow) / fast
			n++
		}
		naiveRow = append(naiveRow, 100*rel/float64(n))
	}
	res.OverheadPct = append(res.OverheadPct, naiveRow)
	return res, nil
}

// measurePair measures a workload bare and under PolyTM at the same
// configuration, returning the two throughputs.
func measurePair(wl workloads.Workload, alg config.AlgID, threads int, window time.Duration) (bare, poly float64, err error) {
	cfg := config.Config{Alg: alg, Threads: threads, Budget: 5, Policy: htm.PolicyDecrease}

	// Bare run.
	hBare := tm.NewHeap(1<<21, threads)
	bareAlg := bareAlgorithm(alg)
	bare, err = workloads.RunFixed(cloneWorkload(wl), workloads.NewBareRunner(bareAlg, hBare, threads), hBare, threads, window, 5)
	if err != nil {
		return 0, 0, err
	}

	// PolyTM run.
	pool := polytm.New(1<<21, threads, cfg)
	poly, err = workloads.RunFixed(cloneWorkload(wl), pool, pool.Heap(), threads, window, 5)
	if err != nil {
		return 0, 0, err
	}
	return bare, poly, nil
}

// measureBare measures a workload on one bare algorithm instance.
func measureBare(wl workloads.Workload, alg tm.Algorithm, threads int, window time.Duration) (float64, error) {
	h := tm.NewHeap(1<<21, threads)
	return workloads.RunFixed(cloneWorkload(wl), workloads.NewBareRunner(alg, h, threads), h, threads, window, 5)
}

// bareAlgorithm instantiates a standalone algorithm matching the id.
func bareAlgorithm(alg config.AlgID) tm.Algorithm {
	switch alg {
	case config.TL2:
		return stm.TL2{}
	case config.TinySTM:
		return stm.TinySTM{}
	case config.NOrec:
		return stm.NOrec{}
	case config.SwissTM:
		return stm.SwissTM{}
	case config.HTM:
		return &htm.HTM{CM: htm.NewCM(5, htm.PolicyDecrease)}
	case config.Hybrid:
		hy := &htm.Hybrid{CM: htm.NewCM(5, htm.PolicyDecrease)}
		hy.SetSlowPath(stm.NOrec{})
		return hy
	default:
		return &stm.GlobalLock{}
	}
}

// cloneWorkload returns a fresh instance of the workload's type so each
// measurement sets up its own state.
func cloneWorkload(wl workloads.Workload) workloads.Workload {
	switch w := wl.(type) {
	case *workloads.HashMap:
		c := *w
		return &c
	case *workloads.RBTree:
		c := *w
		return &c
	case *workloads.Vacation:
		c := *w
		return &c
	case *workloads.TPCC:
		c := *w
		return &c
	case *workloads.Memcached:
		c := *w
		return &c
	default:
		return wl
	}
}

// Print renders the table.
func (r Table4Result) Print(w io.Writer) {
	header(w, "Table 4: PolyTM overhead (%) vs bare TM (negative = PolyTM faster, noise)")
	fmt.Fprintf(w, "%-10s", "#threads")
	for _, b := range r.Backends {
		fmt.Fprintf(w, "%12s", b)
	}
	fmt.Fprintln(w)
	for ti, t := range r.Threads {
		fmt.Fprintf(w, "%-10d", t)
		for bi := range r.Backends {
			fmt.Fprintf(w, "%12.1f", r.OverheadPct[bi][ti])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\nShape check: dispatch overhead small (≈ ≤5%); HTM-naive several × worse than HTM-opt.")
}
