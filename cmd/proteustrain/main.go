// Command proteustrain performs RecTM's off-line profiling step (Algorithm
// 2, line 1): it runs a base set of applications across the tuned
// configuration space on THIS machine and writes the resulting Utility
// Matrix as CSV (rows = workloads, columns = configurations, entries =
// throughput in ops/s, header = configuration labels).
//
// The resulting file can be loaded with proteustm.WithTrainingMatrix (after
// cf.ReadCSV) to auto-tune against measured rather than modeled data.
//
// Usage:
//
//	proteustrain -out um.csv -window 200ms -threads 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cf"
	"repro/internal/config"
	"repro/internal/htm"
	"repro/internal/polytm"
	"repro/internal/workloads"
)

func main() {
	out := flag.String("out", "um.csv", "output CSV path")
	window := flag.Duration("window", 200*time.Millisecond, "measurement window per (workload, config)")
	threads := flag.Int("threads", 8, "maximum worker threads")
	flag.Parse()

	if err := run(*out, *window, *threads); err != nil {
		fmt.Fprintln(os.Stderr, "proteustrain:", err)
		os.Exit(1)
	}
}

// trainingSet returns the base applications profiled off-line: one
// representative per workload family, at a few parameterizations.
func trainingSet() []struct {
	name string
	make func() workloads.Workload
} {
	return []struct {
		name string
		make func() workloads.Workload
	}{
		{"rbtree-read", func() workloads.Workload { return &workloads.RBTree{KeyRange: 1 << 12, UpdateRatio: 0.05} }},
		{"rbtree-update", func() workloads.Workload { return &workloads.RBTree{KeyRange: 1 << 8, UpdateRatio: 0.6} }},
		{"skiplist", func() workloads.Workload { return &workloads.SkipList{KeyRange: 1 << 12} }},
		{"linkedlist", func() workloads.Workload { return &workloads.LinkedList{KeyRange: 1 << 8} }},
		{"hashmap", func() workloads.Workload { return &workloads.HashMap{KeyRange: 1 << 14} }},
		{"genome", func() workloads.Workload { return &workloads.Genome{Segments: 1 << 12} }},
		{"intruder", func() workloads.Workload { return &workloads.Intruder{Flows: 1 << 9} }},
		{"kmeans", func() workloads.Workload { return &workloads.KMeans{Clusters: 12} }},
		{"labyrinth", func() workloads.Workload { return &workloads.Labyrinth{GridSize: 1 << 14, PathLen: 128} }},
		{"ssca2", func() workloads.Workload { return &workloads.SSCA2{Vertices: 1 << 14} }},
		{"vacation", func() workloads.Workload { return &workloads.Vacation{Relations: 1 << 12} }},
		{"yada", func() workloads.Workload { return &workloads.Yada{Elements: 1 << 13} }},
		{"bayes", func() workloads.Workload { return &workloads.Bayes{Nodes: 1 << 11} }},
		{"stmbench7", func() workloads.Workload { return &workloads.STMBench7{Depth: 4} }},
		{"tpcc", func() workloads.Workload { return &workloads.TPCC{Warehouses: 4} }},
		{"memcached", func() workloads.Workload { return &workloads.Memcached{KeyRange: 1 << 13} }},
	}
}

// space enumerates the tuned configuration space for this machine.
func space(maxThreads int) []config.Config {
	var threadCounts []int
	for t := 1; t <= maxThreads; t *= 2 {
		threadCounts = append(threadCounts, t)
	}
	var cfgs []config.Config
	for _, alg := range []config.AlgID{config.TL2, config.TinySTM, config.NOrec, config.SwissTM} {
		for _, t := range threadCounts {
			cfgs = append(cfgs, config.Config{Alg: alg, Threads: t})
		}
	}
	for _, t := range threadCounts {
		for _, b := range []int{2, 8} {
			for _, p := range []htm.CapacityPolicy{htm.PolicyGiveUp, htm.PolicyHalve} {
				cfgs = append(cfgs, config.Config{Alg: config.HTM, Threads: t, Budget: b, Policy: p})
			}
		}
	}
	return cfgs
}

func run(out string, window time.Duration, maxThreads int) error {
	apps := trainingSet()
	cfgs := space(maxThreads)
	labels := make([]string, len(cfgs))
	for i, c := range cfgs {
		labels[i] = c.String()
	}
	um := cf.NewMatrix(len(apps), len(cfgs))

	for ai, app := range apps {
		fmt.Fprintf(os.Stderr, "[%2d/%d] %-14s", ai+1, len(apps), app.name)
		pool := polytm.New(1<<23, maxThreads, cfgs[0])
		wl := app.make()
		if err := wl.Setup(pool.Heap(), workloads.NewRand(uint64(ai)+1)); err != nil {
			return fmt.Errorf("%s: setup: %w", app.name, err)
		}
		d := &workloads.Driver{Workload: wl, Runner: pool, MaxThreads: maxThreads, Seed: uint64(ai) + 100}
		if err := d.Start(); err != nil {
			return fmt.Errorf("%s: %w", app.name, err)
		}
		for ci, cfg := range cfgs {
			if err := pool.Reconfigure(cfg); err != nil {
				return err
			}
			time.Sleep(window / 4) // settle
			before := d.Ops()
			start := time.Now()
			time.Sleep(window)
			um.Data[ai][ci] = float64(d.Ops()-before) / time.Since(start).Seconds()
		}
		// Re-open the gate so every worker can observe the stop flag.
		full := pool.Config()
		full.Threads = maxThreads
		if err := pool.Reconfigure(full); err != nil {
			return err
		}
		d.Stop()
		fmt.Fprintf(os.Stderr, " done\n")
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := um.WriteCSV(f, labels); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d×%d utility matrix to %s\n", um.Rows, um.Cols, out)
	return nil
}
