package shard

import "testing"

// FuzzRangePartition is the order-preserving mirror of FuzzShardRouting:
// it fuzzes (shard count, universe, probe key, scan interval) and
// asserts the invariants the serve layer's range routing depends on:
//
//  1. total coverage, no overlap — every key has exactly one owner, and
//     it is a valid shard index;
//  2. zero remapping for unchanged boundaries — two partitioners built
//     from the same parameters agree on every key, and a round-trip
//     through the explicit-boundary constructor changes nothing;
//  3. Owner consistent with OwnersInRange — the owner of any key inside
//     a scanned interval appears in the interval's owner set, and the
//     set holds only valid, strictly ascending shard indexes;
//  4. growth moves keys only to the new shard.
func FuzzRangePartition(f *testing.F) {
	f.Add(uint8(1), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(uint8(4), uint64(1<<14), uint64(12345), uint64(100), uint64(4200))
	f.Add(uint8(7), uint64(4096), uint64(1)<<63, uint64(4000), uint64(5000))
	f.Add(uint8(16), uint64(3), ^uint64(0), uint64(0), ^uint64(0))
	f.Add(uint8(255), uint64(1<<20), uint64(1<<19), uint64(1<<18), uint64(1<<19))
	f.Fuzz(func(t *testing.T, rawN uint8, universe, key, lo, hi uint64) {
		n := int(rawN%16) + 1
		p1, p2 := NewRange(n, universe), NewRange(n, universe)
		o := p1.Owner(key)
		if o < 0 || o >= n {
			t.Fatalf("Owner(%d) with %d shards = %d, out of range", key, n, o)
		}
		if o2 := p2.Owner(key); o2 != o {
			t.Fatalf("rebuilt partitioner remapped key %d: %d -> %d", key, o, o2)
		}
		// Round-trip the boundary table through the explicit constructor:
		// identical boundaries must mean identical ownership.
		starts, owners := p1.Spans()
		rt, err := NewRangeFromSpans(starts, owners, universe)
		if err != nil {
			t.Fatalf("own span table rejected: %v", err)
		}
		if rt.Owner(key) != o {
			t.Fatalf("span-table round trip remapped key %d", key)
		}
		// Coverage: every shard owns at least one span.
		seen := make([]bool, n)
		for _, ow := range owners {
			seen[ow] = true
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("shard %d of %d owns no span (universe=%d)", s, n, universe)
			}
		}
		if lo <= hi {
			set := p1.OwnersInRange(lo, hi)
			if len(set) == 0 {
				t.Fatalf("OwnersInRange(%d,%d) empty", lo, hi)
			}
			in := make(map[int]bool, len(set))
			prev := -1
			for _, s := range set {
				if s <= prev || s >= n {
					t.Fatalf("OwnersInRange(%d,%d) = %v not strictly ascending valid shards", lo, hi, set)
				}
				prev = s
				in[s] = true
			}
			// Owner/OwnersInRange consistency at the probe points the
			// fuzzer controls plus both interval ends.
			for _, k := range []uint64{lo, hi, lo + (hi-lo)/2, key} {
				if k < lo || k > hi {
					continue
				}
				if !in[p1.Owner(k)] {
					t.Fatalf("Owner(%d)=%d missing from OwnersInRange(%d,%d)=%v", k, p1.Owner(k), lo, hi, set)
				}
			}
		}
		grown := p1.Grow()
		if g := grown.Owner(key); g != o && g != n {
			t.Fatalf("grow %d->%d moved key %d from %d to %d, not the new shard", n, n+1, key, o, g)
		}
	})
}

// FuzzShardRouting fuzzes the consistent-hash router over (key, shard
// count) pairs, asserting the three routing invariants the serve layer
// depends on:
//
//  1. stable ownership — the owner is a valid shard index and two
//     independently built rings agree on it;
//  2. full coverage of the ring — every shard owns at least one vnode
//     interval, so no shard is unreachable;
//  3. no remapping for unchanged N — rebuilding the ring for the same
//     shard count never moves a key (ownership is a pure function).
func FuzzShardRouting(f *testing.F) {
	f.Add(uint64(0), uint8(1))
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(12345), uint8(4))
	f.Add(uint64(1)<<63, uint8(16))
	f.Add(^uint64(0), uint8(255))
	f.Fuzz(func(t *testing.T, key uint64, rawN uint8) {
		n := int(rawN%16) + 1
		r1, r2 := New(n), New(n)
		o := r1.Owner(key)
		if o < 0 || o >= n {
			t.Fatalf("Owner(%d) with %d shards = %d, out of range", key, n, o)
		}
		if o2 := r2.Owner(key); o2 != o {
			t.Fatalf("rebuilt ring remapped key %d: %d -> %d (n=%d unchanged)", key, o, o2, n)
		}
		// Full coverage: walk the vnode table and require every shard to
		// appear; a missing shard would be unroutable for every key.
		seen := make([]bool, n)
		for _, p := range r1.points {
			if p.shard < 0 || p.shard >= n {
				t.Fatalf("vnode owned by invalid shard %d (n=%d)", p.shard, n)
			}
			seen[p.shard] = true
		}
		for s, ok := range seen {
			if !ok {
				t.Fatalf("shard %d of %d has no vnode on the ring", s, n)
			}
		}
		// The derived-key probe: the key's successor relationship must be
		// internally consistent with the point table.
		if len(r1.points) != n*DefaultVnodes {
			t.Fatalf("ring has %d points, want %d", len(r1.points), n*DefaultVnodes)
		}
	})
}
