package fault

import (
	"reflect"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if d, ok := inj.Fire(CoordCrash, -1); ok || d != 0 {
		t.Fatalf("nil injector fired: %v %v", d, ok)
	}
	if inj.Fired(CoordCrash) != 0 || inj.Snapshot() != nil || inj.String() != "" {
		t.Fatal("nil injector reported state")
	}
}

func TestModularSchedule(t *testing.T) {
	inj := NewInjector(1, Rule{Point: CoordCrash, Shard: -1, After: 3, Every: 5, Count: 2})
	var fires []int
	for i := 1; i <= 20; i++ {
		if _, ok := inj.Fire(CoordCrash, -1); ok {
			fires = append(fires, i)
		}
	}
	// Skip 3 arrivals, then every 5th, twice: arrivals 4 and 9.
	if want := []int{4, 9}; !reflect.DeepEqual(fires, want) {
		t.Fatalf("fires = %v, want %v", fires, want)
	}
	if got := inj.Fired(CoordCrash); got != 2 {
		t.Fatalf("Fired = %d, want 2", got)
	}
}

func TestShardFilterAndDelay(t *testing.T) {
	inj := NewInjector(1, Rule{Point: ShardStall, Shard: 1, Every: 1, Count: 1, Delay: 40 * time.Millisecond})
	if _, ok := inj.Fire(ShardStall, 0); ok {
		t.Fatal("fired on wrong shard")
	}
	d, ok := inj.Fire(ShardStall, 1)
	if !ok || d != 40*time.Millisecond {
		t.Fatalf("Fire(shard=1) = %v %v", d, ok)
	}
	if _, ok := inj.Fire(ShardStall, 1); ok {
		t.Fatal("fired past count")
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		inj := NewInjector(seed, Rule{Point: OpDelay, Shard: -1, Prob: 0.3, Every: 1})
		out := make([]bool, 64)
		for i := range out {
			_, out[i] = inj.Fire(OpDelay, 2)
		}
		return out
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	fires := 0
	for _, ok := range a {
		if ok {
			fires++
		}
	}
	if fires == 0 || fires == len(a) {
		t.Fatalf("prob=0.3 fired %d/%d times", fires, len(a))
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "coord-crash@after=3;every=5;count=6,shard-stall:1@after=1500;count=1;stall=1.2s,op-delay@prob=0.25;delay=2ms"
	inj, err := Parse(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := "coord-crash@after=3;every=5;count=6,shard-stall:1@after=1500;count=1;stall=1.2s,op-delay@prob=0.25;stall=2ms"
	if got := inj.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	snap := inj.Snapshot()
	for _, k := range []string{"coord-crash", "shard-stall:1", "op-delay"} {
		if _, ok := snap[k]; !ok {
			t.Fatalf("snapshot missing %q: %v", k, snap)
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if inj, err := Parse("  ", 1); err != nil || inj != nil {
		t.Fatalf("empty spec: %v %v", inj, err)
	}
	for _, bad := range []string{
		"bogus-point@count=1",
		"coord-crash:x@count=1",
		"coord-crash@count",
		"coord-crash@every=0",
		"coord-crash@prob=2",
		"coord-crash@wat=1",
		"shard-stall@stall=xyz",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}
