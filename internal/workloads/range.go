package workloads

import (
	"fmt"
	"sync/atomic"

	"repro/internal/shard"
	"repro/internal/tm"
)

// ServiceRange is the partitioner A/B workload: the deterministic twin
// of proteusd's `--partitioner={hash,range}` choice under a scan-heavy
// mix. The operation stream — which keys, which ops, which scan spans —
// is a pure function of the seed and deliberately independent of the
// partitioner, so running the scenario once with Partitioner "hash" and
// once with "range" replays the identical request sequence against the
// two placement policies. What differs is routing: every scan fences the
// shards the active partitioner maps its interval onto, so the recorded
// fence counts and scan-locality metrics (Metrics) isolate the placement
// decision the way ProteusTM's Utility Matrix isolates the TM
// configuration.
//
// Like ServiceSharded, all shards share one heap here: the scenario
// validates routing, fencing, determinism and the fence-count ordering —
// the per-shard tuners are exercised by the live daemon.
type ServiceRange struct {
	// Label overrides the workload name (default "service-range").
	Label string
	// Partitioner is the placement policy: shard.KindHash or
	// shard.KindRange (the default).
	Partitioner string
	// Shards is the number of key-space shards (default 4).
	Shards int
	// KeyRange bounds the keys and sizes the range partitioner's
	// universe (default 1 << 12).
	KeyRange int
	// InitialSize pre-populates the stores (default KeyRange/2).
	InitialSize int
	// Span is the width of a range scan (default 64).
	Span int
	// Mix is the operation mix name (default "scan-heavy").
	Mix string
	// BatchEvery makes every Nth operation a cross-shard batch put
	// through the fence protocol — the writes the scans race against
	// (default 32; negative disables).
	BatchEvery int
	// BatchKeys is the batch width (default 4).
	BatchKeys int

	part   shard.Partitioner
	sets   []*RBSet
	fences tm.Addr // Shards consecutive fence words, one per shard
	ops    atomic.Uint64

	// Scan-locality counters (see Metrics).
	scanTotal, scanLocal, scanCross atomic.Uint64
	scanFencedShards, crossBatches  atomic.Uint64

	// Resolved by Setup so Op stays cheap on the hot path.
	shards, keyRange, span, batchEvery, batchKeys int
	mix                                           ServiceOpMix
}

// Name implements Workload.
func (s *ServiceRange) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "service-range"
}

func (s *ServiceRange) params() (kind string, shards, keyRange, initial, span, batchEvery, batchKeys int, mix ServiceOpMix, err error) {
	kind = s.Partitioner
	if kind == "" {
		kind = shard.KindRange
	}
	shards = s.Shards
	if shards <= 0 {
		shards = 4
	}
	keyRange = s.KeyRange
	if keyRange <= 0 {
		keyRange = 1 << 12
	}
	initial = s.InitialSize
	if initial <= 0 {
		initial = keyRange / 2
	}
	span = s.Span
	if span <= 0 {
		span = 64
	}
	batchEvery = s.BatchEvery
	if batchEvery < 0 {
		batchEvery = 0
	} else if batchEvery == 0 {
		batchEvery = 32
	}
	batchKeys = s.BatchKeys
	if batchKeys <= 0 {
		batchKeys = 4
	}
	name := s.Mix
	if name == "" {
		name = "scan-heavy"
	}
	mix, err = ServiceMixByName(name)
	if err != nil {
		return
	}
	mix = mix.Normalize()
	return
}

// Setup implements Workload: it builds the partitioner, one store and
// one fence word per shard, and pre-populates each store with the keys
// it owns. The pre-population key stream is partitioner-independent;
// only placement differs.
func (s *ServiceRange) Setup(h *tm.Heap, rng *Rand) error {
	var kind string
	var initial int
	var err error
	kind, s.shards, s.keyRange, initial, s.span, s.batchEvery, s.batchKeys, s.mix, err = s.params()
	if err != nil {
		return fmt.Errorf("service-range: %w", err)
	}
	if s.part, err = shard.NewPartitioner(kind, s.shards, uint64(s.keyRange)); err != nil {
		return fmt.Errorf("service-range: %w", err)
	}
	s.sets = make([]*RBSet, s.shards)
	for i := range s.sets {
		set, err := NewRBSet(h)
		if err != nil {
			return fmt.Errorf("service-range: shard %d store: %w", i, err)
		}
		s.sets[i] = set
	}
	fences, err := h.Alloc(s.shards)
	if err != nil {
		return fmt.Errorf("service-range: fences: %w", err)
	}
	s.fences = fences
	s.ops.Store(0)
	s.scanTotal.Store(0)
	s.scanLocal.Store(0)
	s.scanCross.Store(0)
	s.scanFencedShards.Store(0)
	s.crossBatches.Store(0)
	seq := NewBareRunner(seqAlg(), h, 1)
	for i := 0; i < initial; i++ {
		k := uint64(rng.Intn(s.keyRange))
		o := s.part.Owner(k)
		seq.Atomic(0, func(tx tm.Txn) { s.sets[o].Insert(tx, 0, k, k) })
	}
	return nil
}

// fence returns shard i's fence word.
func (s *ServiceRange) fence(i int) tm.Addr { return s.fences + tm.Addr(i) }

// Metrics implements Metered: the scan-locality and fence observables
// the partitioner A/B compares. scan_fenced_shards totals the shards
// fenced by multi-shard scans — the number the range partitioner must
// hold strictly below hashing for the scan-heavy mix.
func (s *ServiceRange) Metrics() map[string]uint64 {
	return map[string]uint64{
		"scan_total":         s.scanTotal.Load(),
		"scan_single_shard":  s.scanLocal.Load(),
		"scan_multi_shard":   s.scanCross.Load(),
		"scan_fenced_shards": s.scanFencedShards.Load(),
		"cross_batches":      s.crossBatches.Load(),
	}
}

// Op implements Workload: one service request drawn from the fixed mix.
// Every rng draw happens before any partitioner-dependent branching, so
// the operation stream is identical across partitioners.
func (s *ServiceRange) Op(r Runner, self int, rng *Rand) {
	n := s.ops.Add(1)
	if s.batchEvery > 0 && n%uint64(s.batchEvery) == 0 {
		s.crossBatch(r, self, rng, n)
		return
	}
	k := uint64(rng.Intn(s.keyRange))
	p := rng.Float64()
	switch {
	case p < s.mix.Get:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) { set.Get(tx, k) })
	case p < s.mix.Get+s.mix.Put:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) { set.Insert(tx, self, k, n) })
	case p < s.mix.Get+s.mix.Put+s.mix.Del:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) { set.Delete(tx, self, k) })
	case p < s.mix.Get+s.mix.Put+s.mix.Del+s.mix.CAS:
		s.pointOp(r, self, k, func(tx tm.Txn, set *RBSet) {
			if v, ok := set.Get(tx, k); ok {
				set.Insert(tx, self, k, v+1)
			}
		})
	default:
		s.scan(r, self, k, k+uint64(s.span))
	}
}

// pointOp runs one single-key operation on the owning shard under its
// fence.
func (s *ServiceRange) pointOp(r Runner, self int, k uint64, body func(tx tm.Txn, set *RBSet)) {
	s.fencedOp(r, self, s.part.Owner(k), body)
}

// fencedOp runs body against one shard's store under that shard's
// fence, requeue-retrying like the serve workers do (the fence is never
// contended in deterministic serial mode, so the first attempt runs).
func (s *ServiceRange) fencedOp(r Runner, self, owner int, body func(tx tm.Txn, set *RBSet)) {
	set, fence := s.sets[owner], s.fence(owner)
	for try := 0; try < 1000; try++ {
		fenced := false
		r.Atomic(self, func(tx tm.Txn) {
			if fenced = tx.Load(fence) != 0; fenced {
				return
			}
			body(tx, set)
		})
		if !fenced {
			return
		}
	}
}

// scan runs one range scan [lo, hi]: a plain shard transaction when the
// partitioner localizes the interval to one shard, the fence protocol
// (acquire all spans' owners in order, scan+release each) otherwise —
// exactly the serve layer's /kv/range shape.
func (s *ServiceRange) scan(r Runner, self int, lo, hi uint64) {
	parts := s.part.OwnersInRange(lo, hi)
	s.scanTotal.Add(1)
	if len(parts) == 1 {
		s.scanLocal.Add(1)
		s.fencedOp(r, self, parts[0], func(tx tm.Txn, set *RBSet) {
			set.AscendRange(tx, lo, hi, func(_, _ uint64) bool { return true })
		})
		return
	}
	s.scanCross.Add(1)
	s.scanFencedShards.Add(uint64(len(parts)))
	token := uint64(self) + 1
	for try := 0; try < 1000; try++ {
		if !s.acquireFences(r, self, parts, token) {
			continue
		}
		for _, p := range parts {
			set, fence := s.sets[p], s.fence(p)
			r.Atomic(self, func(tx tm.Txn) {
				set.AscendRange(tx, lo, hi, func(_, _ uint64) bool { return true })
				tx.Store(fence, 0)
			})
		}
		return
	}
}

// acquireFences claims every participant's fence in ascending shard
// order, releasing everything taken so far on any failure (abort-all).
func (s *ServiceRange) acquireFences(r Runner, self int, parts []int, token uint64) bool {
	acquired := 0
	for _, p := range parts {
		fence := s.fence(p)
		var got bool
		r.Atomic(self, func(tx tm.Txn) {
			got = false
			if tx.Load(fence) == 0 {
				tx.Store(fence, token)
				got = true
			}
		})
		if !got {
			for _, q := range parts[:acquired] {
				fq := s.fence(q)
				r.Atomic(self, func(tx tm.Txn) { tx.Store(fq, 0) })
			}
			return false
		}
		acquired++
	}
	return true
}

// crossBatch runs one cross-shard batch put through the commit protocol
// — the writes concurrent scans must never observe half of.
func (s *ServiceRange) crossBatch(r Runner, self int, rng *Rand, n uint64) {
	keys := make([]uint64, s.batchKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(s.keyRange))
	}
	parts := s.part.Participants(keys)
	s.crossBatches.Add(1)
	token := uint64(self) + 1
	for try := 0; try < 1000; try++ {
		if !s.acquireFences(r, self, parts, token) {
			continue
		}
		for _, p := range parts {
			set, fence := s.sets[p], s.fence(p)
			r.Atomic(self, func(tx tm.Txn) {
				for _, k := range keys {
					if s.part.Owner(k) == p {
						set.Insert(tx, self, k, n)
					}
				}
				tx.Store(fence, 0)
			})
		}
		return
	}
}

// Verify implements Verifier: every key must live in the store of the
// shard the active partitioner owns it with, and no fence may be left
// held.
func (s *ServiceRange) Verify(h *tm.Heap) error {
	seq := NewBareRunner(seqAlg(), h, 1)
	var err error
	for i, set := range s.sets {
		seq.Atomic(0, func(tx tm.Txn) {
			if tx.Load(s.fence(i)) != 0 {
				err = fmt.Errorf("service-range: shard %d fence left held", i)
				return
			}
			set.AscendRange(tx, 0, ^uint64(0), func(k, _ uint64) bool {
				if o := s.part.Owner(k); o != i {
					err = fmt.Errorf("service-range: key %d found on shard %d but owned by %d", k, i, o)
					return false
				}
				return true
			})
		})
		if err != nil {
			return err
		}
	}
	return nil
}
