package scenario

import (
	"fmt"

	"repro/internal/workloads"
)

// Service family (internal/workloads/service.go): proteusd's key-value
// traffic shapes, replayed in-process. `service-kv` is the deterministic
// twin of the `proteusbench loadgen` phase-shift session documented in
// docs/serving.md; `service-steady` pins one mix for sweep rows;
// `service-sharded` exercises consistent-hash routing and the cross-shard
// 2PC; `service-range` A/Bs the hash vs. order-preserving partitioner
// under an identical scan-heavy op stream (docs/sharding.md).

var (
	svcKeyRange = Param{Name: "keyrange", Desc: "key range of the store", Kind: Int, Default: "16384"}
	svcInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	svcSpan     = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "256"}
	svcPhaseOps = Param{Name: "phaseops", Desc: "operations per traffic phase", Kind: Int, Default: "7000"}
	svcMix      = Param{Name: "mix", Desc: "traffic mix: read-heavy, write-heavy, scan or mixed", Kind: String, Default: "read-heavy"}

	shKeyRange   = Param{Name: "keyrange", Desc: "key range of the sharded store", Kind: Int, Default: "16384"}
	shShards     = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	shInitial    = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	shSpan       = Param{Name: "span", Desc: "per-shard range-scan width", Kind: Int, Default: "128"}
	shSkew       = Param{Name: "skew", Desc: "probability of the shard-correlated mix (0 = uniform routing)", Kind: Float, Default: "0.8"}
	shBatchEvery = Param{Name: "batchevery", Desc: "every Nth op is a cross-shard 2PC batch (0 disables)", Kind: Int, Default: "64"}
	shBatchKeys  = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}

	hkPartitioner = Param{Name: "partitioner", Desc: "placement policy: hash or range", Kind: String, Default: "range"}
	hkShards      = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	hkKeyRange    = Param{Name: "keyrange", Desc: "key range (and range-partitioner universe)", Kind: Int, Default: "4096"}
	hkInitial     = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	hkHotSpan     = Param{Name: "hotspan", Desc: "width of the Zipf hot window", Kind: Int, Default: "512"}
	hkHotFrac     = Param{Name: "hotfrac", Desc: "probability an op draws from the hot window", Kind: Float, Default: "0.9"}
	hkTheta       = Param{Name: "theta", Desc: "Zipf exponent of the hot window", Kind: Float, Default: "1.1"}
	hkMoveEvery   = Param{Name: "moveevery", Desc: "slide the hot-window head every N ops", Kind: Int, Default: "1000"}
	hkSpan        = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "64"}
	hkMix         = Param{Name: "mix", Desc: "traffic mix of the hot/uniform streams", Kind: String, Default: "mixed"}
	hkBatchEvery  = Param{Name: "batchevery", Desc: "every Nth op is a cross-shard 2PC batch (0 disables)", Kind: Int, Default: "64"}
	hkBatchKeys   = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}

	diKeyRange  = Param{Name: "keyrange", Desc: "key range of the store", Kind: Int, Default: "4096"}
	diInitial   = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	diSpan      = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "64"}
	diMix       = Param{Name: "mix", Desc: "traffic mix of the steady stream", Kind: String, Default: "read-heavy"}
	diPeriodOps = Param{Name: "periodops", Desc: "ops per full busy+idle cycle", Kind: Int, Default: "12000"}
	diRateBusy  = Param{Name: "ratebusy", Desc: "busy-half offered rate (ops/sec)", Kind: Float, Default: "100000"}
	diRateIdle  = Param{Name: "rateidle", Desc: "idle-half offered rate (ops/sec)", Kind: Float, Default: "50000"}
	diRipple    = Param{Name: "ripple", Desc: "sub-step ripple height (fraction of the level)", Kind: Float, Default: "0.035"}

	sloKeyRange = Param{Name: "keyrange", Desc: "key range of the store", Kind: Int, Default: "16384"}
	sloInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	sloSpan     = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "256"}
	sloMix      = Param{Name: "mix", Desc: "traffic mix of the pinned stream", Kind: String, Default: "scan-heavy"}

	chShards      = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	chKeyRange    = Param{Name: "keyrange", Desc: "key range of the sharded store", Kind: Int, Default: "16384"}
	chInitial     = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	chCrossEvery  = Param{Name: "crossevery", Desc: "every Nth op is a cross-shard 2PC batch", Kind: Int, Default: "16"}
	chBatchKeys   = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}
	chFault       = Param{Name: "fault", Desc: "injected failure: crash (roll-forward leg) or stall (abort leg)", Kind: String, Default: "crash"}
	chFaultEvery  = Param{Name: "faultevery", Desc: "inject on every Nth cross-shard batch", Kind: Int, Default: "4"}
	chFaultCount  = Param{Name: "faultcount", Desc: "total injections before the quiet tail", Kind: Int, Default: "6"}
	chDeadlineOps = Param{Name: "deadlineops", Desc: "orphaned-fence deadline in operations", Kind: Int, Default: "200"}

	gbShards      = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	gbKeyRange    = Param{Name: "keyrange", Desc: "key range of the sharded store", Kind: Int, Default: "16384"}
	gbInitial     = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	gbSpan        = Param{Name: "span", Desc: "micro-op range-scan width", Kind: Int, Default: "64"}
	gbGroupCommit = Param{Name: "groupcommit", Desc: "1 = coalesce each plan into one atomic block, 0 = one block per micro-op", Kind: Int, Default: "0"}
	gbBatchMax    = Param{Name: "batchmax", Desc: "micro-ops per plan", Kind: Int, Default: "8"}
	gbCrossEvery  = Param{Name: "crossevery", Desc: "every Nth op is a cross-shard 2PC batch (0 disables)", Kind: Int, Default: "32"}
	gbBatchKeys   = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}

	rsShards       = Param{Name: "shards", Desc: "initial shard count", Kind: Int, Default: "2"}
	rsMaxShards    = Param{Name: "maxshards", Desc: "shard-count ceiling for splits", Kind: Int, Default: "4"}
	rsKeyRange     = Param{Name: "keyrange", Desc: "key range (and range-partitioner universe)", Kind: Int, Default: "16384"}
	rsInitial      = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	rsHotTenth     = Param{Name: "hottenth", Desc: "per-mille chance an op draws from the hot low span", Kind: Int, Default: "600"}
	rsSplitEvery   = Param{Name: "splitevery", Desc: "attempt one split-and-migrate every N ops", Kind: Int, Default: "1500"}
	rsRefreshEvery = Param{Name: "refreshevery", Desc: "client placement-replica refresh cadence in ops", Kind: Int, Default: "64"}
	rsMigrateBatch = Param{Name: "migratebatch", Desc: "keys per fenced copy/delete batch", Kind: Int, Default: "64"}
	rsCrossEvery   = Param{Name: "crossevery", Desc: "every Nth op is a cross-shard 2PC batch", Kind: Int, Default: "16"}
	rsBatchKeys    = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}

	msShards       = Param{Name: "shards", Desc: "initial shard count", Kind: Int, Default: "4"}
	msMinShards    = Param{Name: "minshards", Desc: "shard-count floor for merges", Kind: Int, Default: "2"}
	msKeyRange     = Param{Name: "keyrange", Desc: "key range (and range-partitioner universe)", Kind: Int, Default: "16384"}
	msInitial      = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	msHotTenth     = Param{Name: "hottenth", Desc: "per-mille chance an op draws from the hot low span", Kind: Int, Default: "600"}
	msProbeTenth   = Param{Name: "probetenth", Desc: "per-mille chance an op probes the merge-moved window", Kind: Int, Default: "30"}
	msMergeEvery   = Param{Name: "mergeevery", Desc: "attempt one merge-and-retire every N ops", Kind: Int, Default: "1500"}
	msRefreshEvery = Param{Name: "refreshevery", Desc: "client placement-replica refresh cadence in ops", Kind: Int, Default: "64"}
	msMigrateBatch = Param{Name: "migratebatch", Desc: "keys per fenced copy/delete batch", Kind: Int, Default: "64"}
	msCrossEvery   = Param{Name: "crossevery", Desc: "every Nth op is a cross-shard 2PC batch", Kind: Int, Default: "16"}
	msBatchKeys    = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}

	rgPartitioner = Param{Name: "partitioner", Desc: "placement policy: hash or range", Kind: String, Default: "range"}
	rgShards      = Param{Name: "shards", Desc: "number of key-space shards", Kind: Int, Default: "4"}
	rgKeyRange    = Param{Name: "keyrange", Desc: "key range (and range-partitioner universe)", Kind: Int, Default: "4096"}
	rgInitial     = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
	rgSpan        = Param{Name: "span", Desc: "range-scan width", Kind: Int, Default: "64"}
	rgMix         = Param{Name: "mix", Desc: "traffic mix (scan-heavy stresses placement)", Kind: String, Default: "scan-heavy"}
	rgBatchEvery  = Param{Name: "batchevery", Desc: "every Nth op is a cross-shard 2PC batch (0 disables)", Kind: Int, Default: "32"}
	rgBatchKeys   = Param{Name: "batchkeys", Desc: "keys per cross-shard batch", Kind: Int, Default: "4"}
)

func init() {
	Register(Scenario{
		Name:        "service-kv",
		Family:      "service",
		Description: "proteusd KV traffic: read-heavy → write-heavy → scan phase shift",
		Params:      []Param{svcKeyRange, svcInitial, svcSpan, svcPhaseOps},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.ServiceKV{
				KeyRange:    v.Int(svcKeyRange),
				InitialSize: v.Int(svcInitial),
				Span:        v.Int(svcSpan),
				PhaseOps:    uint64(v.Int(svcPhaseOps)),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-sharded",
		Family:      "service",
		Description: "sharded KV: consistent-hash routing, skewed vs. uniform per-shard mixes, cross-shard 2PC batches",
		Params:      []Param{shShards, shKeyRange, shInitial, shSpan, shSkew, shBatchEvery, shBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			batchEvery := v.Int(shBatchEvery)
			if batchEvery == 0 {
				batchEvery = -1 // ServiceSharded treats negative as disabled, 0 as default
			}
			return &workloads.ServiceSharded{
				Shards:      v.Int(shShards),
				KeyRange:    v.Int(shKeyRange),
				InitialSize: v.Int(shInitial),
				Span:        v.Int(shSpan),
				Skew:        v.Float(shSkew),
				BatchEvery:  batchEvery,
				BatchKeys:   v.Int(shBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-batch",
		Family:      "service",
		Description: "group-commit A/B: identical seeded plans executed coalesced or solo — end state must be byte-identical, only batch counters differ",
		Params:      []Param{gbShards, gbKeyRange, gbInitial, gbSpan, gbGroupCommit, gbBatchMax, gbCrossEvery, gbBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			crossEvery := v.Int(gbCrossEvery)
			if crossEvery == 0 {
				crossEvery = -1 // ServiceBatch treats negative as disabled, 0 as default
			}
			return &workloads.ServiceBatch{
				Shards:      v.Int(gbShards),
				KeyRange:    v.Int(gbKeyRange),
				InitialSize: v.Int(gbInitial),
				Span:        v.Int(gbSpan),
				GroupCommit: v.Int(gbGroupCommit) != 0,
				BatchMax:    v.Int(gbBatchMax),
				CrossEvery:  crossEvery,
				BatchKeys:   v.Int(gbBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-chaos",
		Family:      "service",
		Description: "self-healing 2PC under injected faults: coordinator crashes roll forward, foreign wedges abort, recovery counts in metrics",
		Params:      []Param{chShards, chKeyRange, chInitial, chCrossEvery, chBatchKeys, chFault, chFaultEvery, chFaultCount, chDeadlineOps},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.ServiceChaos{
				Shards:      v.Int(chShards),
				KeyRange:    v.Int(chKeyRange),
				InitialSize: v.Int(chInitial),
				CrossEvery:  v.Int(chCrossEvery),
				BatchKeys:   v.Int(chBatchKeys),
				FaultKind:   v.Str(chFault),
				FaultEvery:  v.Int(chFaultEvery),
				FaultCount:  v.Int(chFaultCount),
				DeadlineOps: v.Int(chDeadlineOps),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-reshard",
		Family:      "service",
		Description: "live resharding: SplitHeaviest plans installed under skewed load — fenced span migration, epoch'd placement flips, stale-replica bounces in metrics",
		Params:      []Param{rsShards, rsMaxShards, rsKeyRange, rsInitial, rsHotTenth, rsSplitEvery, rsRefreshEvery, rsMigrateBatch, rsCrossEvery, rsBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.ServiceReshard{
				Shards:       v.Int(rsShards),
				MaxShards:    v.Int(rsMaxShards),
				KeyRange:     v.Int(rsKeyRange),
				InitialSize:  v.Int(rsInitial),
				HotTenth:     v.Int(rsHotTenth),
				SplitEvery:   v.Int(rsSplitEvery),
				RefreshEvery: v.Int(rsRefreshEvery),
				MigrateBatch: v.Int(rsMigrateBatch),
				CrossEvery:   v.Int(rsCrossEvery),
				BatchKeys:    v.Int(rsBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-merge",
		Family:      "service",
		Description: "live merge/shrink: PlanMergeColdest retires cooled top shards — fenced copy into the live recipient, shrinking placement flips, retired-shard bounces in metrics",
		Params:      []Param{msShards, msMinShards, msKeyRange, msInitial, msHotTenth, msProbeTenth, msMergeEvery, msRefreshEvery, msMigrateBatch, msCrossEvery, msBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.ServiceMerge{
				Shards:       v.Int(msShards),
				MinShards:    v.Int(msMinShards),
				KeyRange:     v.Int(msKeyRange),
				InitialSize:  v.Int(msInitial),
				HotTenth:     v.Int(msHotTenth),
				ProbeTenth:   v.Int(msProbeTenth),
				MergeEvery:   v.Int(msMergeEvery),
				RefreshEvery: v.Int(msRefreshEvery),
				MigrateBatch: v.Int(msMigrateBatch),
				CrossEvery:   v.Int(msCrossEvery),
				BatchKeys:    v.Int(msBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-range",
		Family:      "service",
		Description: "partitioner A/B: identical scan-heavy op stream under hash or range placement, fence counts in metrics",
		Params:      []Param{rgPartitioner, rgShards, rgKeyRange, rgInitial, rgSpan, rgMix, rgBatchEvery, rgBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			batchEvery := v.Int(rgBatchEvery)
			if batchEvery == 0 {
				batchEvery = -1 // ServiceRange treats negative as disabled, 0 as default
			}
			return &workloads.ServiceRange{
				Partitioner: v.Str(rgPartitioner),
				Shards:      v.Int(rgShards),
				KeyRange:    v.Int(rgKeyRange),
				InitialSize: v.Int(rgInitial),
				Span:        v.Int(rgSpan),
				Mix:         v.Str(rgMix),
				BatchEvery:  batchEvery,
				BatchKeys:   v.Int(rgBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-hotkey",
		Family:      "service",
		Description: "hostile hot-key traffic: sliding Zipf window over hash or range placement, locality counters in metrics",
		Params:      []Param{hkPartitioner, hkShards, hkKeyRange, hkInitial, hkHotSpan, hkHotFrac, hkTheta, hkMoveEvery, hkSpan, hkMix, hkBatchEvery, hkBatchKeys},
		Make: func(v Values) (workloads.Workload, error) {
			batchEvery := v.Int(hkBatchEvery)
			if batchEvery == 0 {
				batchEvery = -1 // ServiceHotKey treats negative as disabled, 0 as default
			}
			return &workloads.ServiceHotKey{
				Partitioner: v.Str(hkPartitioner),
				Shards:      v.Int(hkShards),
				KeyRange:    v.Int(hkKeyRange),
				InitialSize: v.Int(hkInitial),
				HotSpan:     v.Int(hkHotSpan),
				HotFrac:     v.Float(hkHotFrac),
				Theta:       v.Float(hkTheta),
				MoveEvery:   v.Int(hkMoveEvery),
				Span:        v.Int(hkSpan),
				Mix:         v.Str(hkMix),
				BatchEvery:  batchEvery,
				BatchKeys:   v.Int(hkBatchKeys),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-diurnal",
		Family:      "service",
		Description: "diurnal offered-rate curve with a sub-band ripple: the monitor dwell/hysteresis churn trap",
		Params:      []Param{diKeyRange, diInitial, diSpan, diMix, diPeriodOps, diRateBusy, diRateIdle, diRipple},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.ServiceDiurnal{
				KeyRange:    v.Int(diKeyRange),
				InitialSize: v.Int(diInitial),
				Span:        v.Int(diSpan),
				Mix:         v.Str(diMix),
				PeriodOps:   v.Int(diPeriodOps),
				RateBusy:    v.Float(diRateBusy),
				RateIdle:    v.Float(diRateIdle),
				RipplePct:   v.Float(diRipple),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-slo",
		Family:      "service",
		Description: "SLO-tuning A/B stream: one pinned mix scored under the serving model (capacity vs. throughput-under-SLO)",
		Params:      []Param{sloKeyRange, sloInitial, sloSpan, sloMix},
		Make: func(v Values) (workloads.Workload, error) {
			mix, err := workloads.ServiceMixByName(v.Str(sloMix))
			if err != nil {
				return nil, fmt.Errorf("service-slo: %w", err)
			}
			return &workloads.ServiceKV{
				Label:       "service-slo",
				KeyRange:    v.Int(sloKeyRange),
				InitialSize: v.Int(sloInitial),
				Span:        v.Int(sloSpan),
				Phases:      []workloads.ServicePhase{{Mix: mix, Ops: 1 << 62}},
			}, nil
		},
	})
	Register(Scenario{
		Name:        "service-steady",
		Family:      "service",
		Description: "proteusd KV traffic pinned to one mix (no phase shift)",
		Params:      []Param{svcKeyRange, svcInitial, svcSpan, svcMix},
		Make: func(v Values) (workloads.Workload, error) {
			mix, err := workloads.ServiceMixByName(v.Str(svcMix))
			if err != nil {
				return nil, fmt.Errorf("service-steady: %w", err)
			}
			return &workloads.ServiceKV{
				Label:       "service-steady",
				KeyRange:    v.Int(svcKeyRange),
				InitialSize: v.Int(svcInitial),
				Span:        v.Int(svcSpan),
				Phases:      []workloads.ServicePhase{{Mix: mix, Ops: 1 << 62}},
			}, nil
		},
	})
}
