package tm

// White-box tests for the read/write/lock set machinery: the
// linear-to-indexed transition, the fingerprint-filter fast path and its
// false-positive fallback, capacity retention across Reset, and read-set
// deduplication under stripe collisions. Black-box property tests live in
// tm_test.go.

import "testing"

// collidingPair returns two distinct values that map to the same
// fingerprint-filter bit (a guaranteed filter false positive when only one
// of them is in a set).
func collidingPair(t *testing.T) (uint64, uint64) {
	t.Helper()
	a := uint64(1)
	for b := a + 1; b < a+100000; b++ {
		if fpBit(a) == fpBit(b) {
			return a, b
		}
	}
	t.Fatal("no fingerprint collision found in 100000 candidates")
	return 0, 0
}

// TestWriteSetLinearToIndexedTransition walks Put counts across
// smallSetLinear and verifies the index engages exactly past the threshold
// with identical lookup semantics on both sides.
func TestWriteSetLinearToIndexedTransition(t *testing.T) {
	var w WriteSet
	for i := 0; i < smallSetLinear; i++ {
		w.Put(Addr(i*64), uint64(i))
	}
	if w.indexed {
		t.Fatalf("index engaged at %d entries; linear regime should hold through smallSetLinear=%d", w.Len(), smallSetLinear)
	}
	// Overwrites at the threshold must not trigger indexing (no new entry).
	w.Put(Addr(0), 999)
	if w.indexed || w.Len() != smallSetLinear {
		t.Fatalf("overwrite changed regime: indexed=%v len=%d", w.indexed, w.Len())
	}
	w.Put(Addr(smallSetLinear*64), 1000)
	if !w.indexed {
		t.Fatalf("index not engaged at %d entries (> smallSetLinear)", w.Len())
	}
	for i := 0; i < smallSetLinear; i++ {
		want := uint64(i)
		if i == 0 {
			want = 999
		}
		if v, ok := w.Get(Addr(i * 64)); !ok || v != want {
			t.Fatalf("Get(%d) after transition = (%d,%v), want (%d,true)", i*64, v, ok, want)
		}
	}
	if v, ok := w.Get(Addr(smallSetLinear * 64)); !ok || v != 1000 {
		t.Fatalf("Get(threshold+1 entry) = (%d,%v)", v, ok)
	}
	// Keep inserting through an index growth and re-verify everything.
	for i := smallSetLinear; i < 200; i++ {
		w.Put(Addr(i*64), uint64(i))
	}
	for i := 1; i < 200; i++ {
		if v, ok := w.Get(Addr(i * 64)); !ok || v != uint64(i) {
			t.Fatalf("Get(%d) after growth = (%d,%v), want (%d,true)", i*64, v, ok, i)
		}
	}
}

// TestWriteSetFilterFalsePositive pins the filter contract: a colliding
// address must fall through to the real lookup and correctly miss, in both
// the linear and the indexed regime.
func TestWriteSetFilterFalsePositive(t *testing.T) {
	x, y := collidingPair(t)
	var w WriteSet
	w.Put(Addr(x), 7)
	if w.filter&fpBit(y) == 0 {
		t.Fatal("test broken: addresses do not collide in the filter")
	}
	if _, ok := w.Get(Addr(y)); ok {
		t.Fatal("false positive returned a hit in linear regime")
	}
	for i := 0; i < 2*smallSetLinear; i++ {
		w.Put(Addr(1000+i), uint64(i))
	}
	if !w.indexed {
		t.Fatal("expected indexed regime")
	}
	if _, ok := w.Get(Addr(y)); ok {
		t.Fatal("false positive returned a hit in indexed regime")
	}
	if v, ok := w.Get(Addr(x)); !ok || v != 7 {
		t.Fatalf("true member lost: (%d,%v)", v, ok)
	}
}

// TestWriteSetResetRetainsCapacity verifies Reset keeps both the entry
// storage and the open-addressed table while emptying the set.
func TestWriteSetResetRetainsCapacity(t *testing.T) {
	var w WriteSet
	for i := 0; i < 300; i++ {
		w.Put(Addr(i), uint64(i))
	}
	entryCap, idxCap := cap(w.entries), cap(w.idx)
	if idxCap == 0 {
		t.Fatal("expected an allocated index after 300 puts")
	}
	w.Reset()
	if w.Len() != 0 || w.filter != 0 || w.indexed {
		t.Fatalf("Reset left state: len=%d filter=%#x indexed=%v", w.Len(), w.filter, w.indexed)
	}
	if _, ok := w.Get(Addr(5)); ok {
		t.Fatal("stale entry visible after Reset")
	}
	for i := 0; i < 300; i++ {
		w.Put(Addr(i), uint64(i+1))
	}
	if cap(w.entries) != entryCap {
		t.Errorf("entry storage reallocated after Reset: cap %d -> %d", entryCap, cap(w.entries))
	}
	if cap(w.idx) != idxCap {
		t.Errorf("index table reallocated after Reset: cap %d -> %d", idxCap, cap(w.idx))
	}
	for i := 0; i < 300; i++ {
		if v, ok := w.Get(Addr(i)); !ok || v != uint64(i+1) {
			t.Fatalf("Get(%d) after reuse = (%d,%v)", i, v, ok)
		}
	}
}

// TestReadSetDedup verifies re-reads collapse to one entry, distinct
// versions are never conflated, and filter-colliding stripes all stay
// recorded (dedup must never drop a validation obligation).
func TestReadSetDedup(t *testing.T) {
	var r ReadSet
	for i := 0; i < 10; i++ {
		r.Add(42, 7)
	}
	if r.Len() != 1 {
		t.Fatalf("consecutive re-reads recorded %d entries, want 1", r.Len())
	}
	// Same stripe at a different version is a distinct validation
	// obligation and must be kept.
	r.Add(42, 8)
	if r.Len() != 2 {
		t.Fatalf("distinct version deduped away: len=%d", r.Len())
	}
	// Stripes that collide in the filter must both be recorded.
	x, y := collidingPair(t)
	r.Reset()
	r.Add(uint32(x), 1)
	r.Add(uint32(y), 1)
	if r.Len() != 2 {
		t.Fatalf("filter collision dropped a stripe: len=%d", r.Len())
	}
	for _, want := range []uint32{uint32(x), uint32(y)} {
		found := false
		for _, e := range r.Entries() {
			if e.Stripe == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("stripe %d missing from read set", want)
		}
	}
}

// TestReadSetDedupBeyondWindow documents the bounded-window policy:
// duplicates older than readDedupWindow may be re-appended (harmless —
// they are merely validated twice), but recent duplicates always collapse.
func TestReadSetDedupBeyondWindow(t *testing.T) {
	var r ReadSet
	r.Add(1, 5)
	for i := 0; i < readDedupWindow; i++ {
		r.Add(uint32(100+i), 5)
	}
	n := r.Len()
	r.Add(1, 5) // outside the window: may or may not dedup
	if r.Len() < n || r.Len() > n+1 {
		t.Fatalf("unexpected growth: %d -> %d", n, r.Len())
	}
	r.Add(1, 5) // now within the window: must dedup
	last := r.Len()
	r.Add(1, 5)
	if r.Len() != last {
		t.Fatalf("recent duplicate not collapsed: %d -> %d", last, r.Len())
	}
}

// TestReadSetReset verifies the filter clears with the entries.
func TestReadSetReset(t *testing.T) {
	var r ReadSet
	r.Add(9, 1)
	r.Reset()
	if r.Len() != 0 || r.filter != 0 {
		t.Fatalf("Reset left state: len=%d filter=%#x", r.Len(), r.filter)
	}
	r.Add(9, 2)
	if r.Len() != 1 || r.Entries()[0].Version != 2 {
		t.Fatalf("read set broken after Reset: %+v", r.Entries())
	}
}

// TestLockSetHoldsFilter covers the lock set's filter fast path, including
// a false-positive fallback.
func TestLockSetHoldsFilter(t *testing.T) {
	x, y := collidingPair(t)
	var l LockSet
	l.init()
	l.Add(uint32(x), 3)
	if !l.Holds(uint32(x)) {
		t.Fatal("held stripe not found")
	}
	if l.Holds(uint32(y)) {
		t.Fatal("false positive reported as held")
	}
	if l.Holds(12345) {
		t.Fatal("filter miss reported as held")
	}
	l.Reset()
	if l.Holds(uint32(x)) {
		t.Fatal("stale hold after Reset")
	}
}
