package ml

// TuneSpec is one hyper-parameter combination for random search.
type TuneSpec struct {
	// Name labels the algorithm family ("CART", "SMO", "MLP").
	Name string
	// New constructs the configured classifier.
	New func() Classifier
}

// CandidatesCART enumerates the CART hyper-parameter grid.
func CandidatesCART() []TuneSpec {
	var out []TuneSpec
	for _, depth := range []int{4, 8, 12, 16} {
		for _, leaf := range []int{1, 2, 4} {
			depth, leaf := depth, leaf
			out = append(out, TuneSpec{Name: "CART", New: func() Classifier {
				return &CART{MaxDepth: depth, MinLeaf: leaf}
			}})
		}
	}
	return out
}

// CandidatesSMO enumerates the SVM hyper-parameter grid.
func CandidatesSMO() []TuneSpec {
	var out []TuneSpec
	for _, c := range []float64{0.1, 1, 10} {
		for _, passes := range []int{3, 5} {
			c, passes := c, passes
			out = append(out, TuneSpec{Name: "SMO", New: func() Classifier {
				return &SMO{C: c, MaxPasses: passes, Seed: 17}
			}})
		}
	}
	return out
}

// CandidatesMLP enumerates the MLP hyper-parameter grid.
func CandidatesMLP() []TuneSpec {
	var out []TuneSpec
	for _, hidden := range []int{8, 16, 32} {
		for _, lr := range []float64{0.003, 0.01, 0.03} {
			for _, ep := range []int{100, 200} {
				hidden, lr, ep := hidden, lr, ep
				out = append(out, TuneSpec{Name: "MLP", New: func() Classifier {
					return &MLP{Hidden: hidden, LR: lr, Epochs: ep, Seed: 23}
				}})
			}
		}
	}
	return out
}

// Tune random-searches up to budget specs with k-fold cross-validation on
// (x, y), returning the constructor of the best-scoring spec (§6.3's "random
// search optimization ... with cross-validation on the training set").
func Tune(specs []TuneSpec, x [][]float64, y []int, folds, budget int, seed uint64) TuneSpec {
	if folds < 2 {
		folds = 3
	}
	if folds > len(x) {
		folds = len(x)
	}
	rng := seed ^ 0x9E3779B97F4A7C15
	if rng == 0 {
		rng = 1
	}
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	for i := len(order) - 1; i > 0; i-- {
		j := next(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	if budget <= 0 || budget > len(order) {
		budget = len(order)
	}

	perm := make([]int, len(x))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := next(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}

	best := specs[order[0]]
	bestAcc := -1.0
	for _, oi := range order[:budget] {
		spec := specs[oi]
		correct, total := 0, 0
		for f := 0; f < folds; f++ {
			lo, hi := f*len(x)/folds, (f+1)*len(x)/folds
			var trX [][]float64
			var trY []int
			for i, p := range perm {
				if i < lo || i >= hi {
					trX = append(trX, x[p])
					trY = append(trY, y[p])
				}
			}
			if len(trX) == 0 {
				continue
			}
			clf := spec.New()
			clf.Fit(trX, trY)
			for _, p := range perm[lo:hi] {
				if clf.Predict(x[p]) == y[p] {
					correct++
				}
				total++
			}
		}
		if total == 0 {
			continue
		}
		acc := float64(correct) / float64(total)
		if acc > bestAcc {
			bestAcc, best = acc, spec
		}
	}
	return best
}
