package scenario

import "repro/internal/workloads"

// List-structure family (internal/workloads/lists.go): skip list, sorted
// linked list and chained hash map — the remaining three concurrent data
// structures of the paper's Table 1.

var (
	slKeyRange = Param{Name: "keyrange", Desc: "key range of the skip list", Kind: Int, Default: "16384"}
	slUpdate   = Param{Name: "update", Desc: "fraction of mutating operations", Kind: Float, Default: "0.2"}
	slInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}

	llKeyRange = Param{Name: "keyrange", Desc: "key range of the list", Kind: Int, Default: "512"}
	llUpdate   = Param{Name: "update", Desc: "fraction of mutating operations", Kind: Float, Default: "0.2"}
	llInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}

	hmBuckets  = Param{Name: "buckets", Desc: "bucket-array width", Kind: Int, Default: "4096"}
	hmKeyRange = Param{Name: "keyrange", Desc: "key range of the map", Kind: Int, Default: "32768"}
	hmUpdate   = Param{Name: "update", Desc: "fraction of mutating operations", Kind: Float, Default: "0.2"}
	hmInitial  = Param{Name: "initial", Desc: "pre-populated size (0 = keyrange/2)", Kind: Int, Default: "0"}
)

func init() {
	Register(Scenario{
		Name:        "skiplist",
		Family:      "lists",
		Description: "skip list: long read paths, no rebalancing writes",
		Params:      []Param{slKeyRange, slUpdate, slInitial},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.SkipList{
				KeyRange:    v.Int(slKeyRange),
				UpdateRatio: v.Float(slUpdate),
				InitialSize: v.Int(slInitial),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "linkedlist",
		Family:      "lists",
		Description: "sorted linked list: the invisible-read stress test",
		Params:      []Param{llKeyRange, llUpdate, llInitial},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.LinkedList{
				KeyRange:    v.Int(llKeyRange),
				UpdateRatio: v.Float(llUpdate),
				InitialSize: v.Int(llInitial),
			}, nil
		},
	})
	Register(Scenario{
		Name:        "hashmap",
		Family:      "lists",
		Description: "chained hash map: short HTM-friendly transactions",
		Params:      []Param{hmBuckets, hmKeyRange, hmUpdate, hmInitial},
		Make: func(v Values) (workloads.Workload, error) {
			return &workloads.HashMap{
				Buckets:     v.Int(hmBuckets),
				KeyRange:    v.Int(hmKeyRange),
				UpdateRatio: v.Float(hmUpdate),
				InitialSize: v.Int(hmInitial),
			}, nil
		},
	})
}
