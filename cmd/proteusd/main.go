// Command proteusd is the ProteusTM data service: a long-running daemon
// exposing one or more transactional heaps as a concurrent key-value /
// deque store over HTTP+JSON, with one RecTM adapter per shard retuning
// that shard's TM backend, parallelism degree and HTM contention
// management underneath the traffic. Operators watch the adaptation live
// on /statusz.
//
// Usage:
//
//	proteusd [--addr 127.0.0.1:7411] [--shards 1] [--partitioner hash]
//	    [--key-universe 16384] [--workers 8] [--queue 1024]
//	    [--autotune=true] [--sample-period 100ms] [--seed 42]
//	    [--heap-words 4194304] [--preload 8192]
//	    [--slo-p99 0] [--deadline 0] [--fault ""]
//	    [--fence-deadline 1s] [--breaker-cooldown 1s]
//	    [--group-commit] [--group-commit-max 16]
//	    [--fence-granularity shard]
//	    [--autosplit 0] [--autosplit-max 8] [--autosplit-interval 2s]
//	    [--automerge 0] [--automerge-min 0] [--spare-grace 30s]
//
// --slo-p99 sets a tail-latency target: the per-shard tuners switch from
// raw throughput to throughput-under-SLO (configurations that blow the
// p99 budget are penalized), and admission sheds load with 429 once
// queue-wait p99 crosses the budget. --deadline gives every operation a
// default queueing budget: an op still queued past it (or whose client
// hung up) is dropped with 504 instead of executed; clients can tighten
// it per request with ?deadline_ms=. Both appear in /statusz
// (server.slo_p99_ms, server.deadline_ms, ops.shed_latency,
// ops.shed_deadline).
//
// With --shards=N the key space is partitioned across N independent
// ProteusTM systems; single-key operations route to the owning shard and
// multi-key operations (range, mput, mget) commit with the cross-shard
// two-phase protocol (see docs/sharding.md). --partitioner selects the
// placement policy: "hash" (consistent hashing, uniform placement) or
// "range" (order-preserving boundary spans over --key-universe, so
// /kv/range scans fence only the shards whose spans they intersect).
// On SIGINT/SIGTERM the daemon drains each shard in turn before exiting.
//
// --fault arms the deterministic fault-injection substrate with a spec
// like "coord-crash@after=3;every=5;count=6,shard-stall:1@count=1;stall=1200ms"
// (see internal/fault): injected coordinator crashes strand fences that
// the per-shard failure detector recovers within --fence-deadline, and
// stalled shards trip a circuit breaker that sheds with 503+Retry-After
// until --breaker-cooldown elapses and progress resumes. Recovery
// counters appear under /statusz ops.* and fault fire counts under
// ops.faults.
//
// --group-commit turns on the worker-gate group commit: when the
// admission queue has backlog, compatible single-shard ops are coalesced
// (up to --group-commit-max) into one TM transaction, amortizing the
// per-transaction overhead; per-op deadlines still hold inside a batch
// (an expired op is excised with 504, not executed).
// --fence-granularity=key replaces the whole-shard cross-shard fence
// with per-key fence table entries, so local ops that don't intersect an
// in-flight 2PC's footprint proceed instead of requeueing. Observables:
// ops.group_commits, ops.group_batch_p50/p99, ops.fence_keys_held,
// ops.fenced_requeues.
//
// A range-partitioned daemon resharding live: POST /admin/reshard plans a
// SplitHeaviest step from the live per-shard ops_routed counters, grows
// the fleet by one shard, migrates the moved span under the donor's
// fence, and flips the placement epoch — no restart, no dropped
// requests (operations routed under the old placement bounce off the
// donor's placement-epoch word and re-route). --autosplit=S arms the
// same step as a background trigger: when the hottest shard carries more
// than fraction S of routed operations, the daemon splits it, up to
// --autosplit-max shards, checking every --autosplit-interval.
// Observables: server.partitioner_epoch, server.resharding,
// server.span_starts/span_owners, ops.reshards, ops.keys_migrated,
// ops.moved_bounces. The deque stays pinned to shard 0 and its reserved
// key window never migrates.
//
// The fleet shrinks the same way it grows: POST /admin/reshard with body
// {"plan":"merge"} plans a MergeColdest step — the top shard, when it is
// the coldest, hands its span to the adjacent shard under the same
// fenced pipeline, the placement flips one shard smaller, and the donor
// is drained and retired (its workers and tuner stop). --automerge=S
// arms the symmetric background trigger: when the top shard's share of
// the last interval's routed operations falls below S (or the fleet goes
// idle), the daemon merges it away, down to --automerge-min shards,
// checking every --autosplit-interval. Spare shards left by rolled-back
// migrations are reaped after --spare-grace. Observables: ops.merges,
// ops.shards_retired, server.spare_shards, ops.range_conservative.
//
// Endpoints (all parameters are uint64 query parameters; keys/vals are
// comma-separated lists):
//
//	GET  /healthz                      readiness probe (503 while a breaker is open or a fence is stale)
//	GET  /statusz                      per-shard tuner state, fleet rollup, latency split
//	POST /admin/reshard                migrate one placement step live: body {"plan":"split"} (default) or {"plan":"merge"}
//	GET  /kv/get?key=K                 point read
//	POST /kv/put?key=K&val=V           insert or update
//	POST /kv/del?key=K                 delete
//	POST /kv/cas?key=K&old=O&new=N     compare-and-swap
//	GET  /kv/range?lo=L&hi=H           cross-shard range count/sum (span clamped)
//	POST /kv/mput?keys=...&vals=...    atomic cross-shard batch put
//	GET  /kv/mget?keys=...             atomic cross-shard batch read
//	POST /list/lpush?val=V  /list/rpush?val=V
//	POST /list/lpop  /list/rpop
//	GET  /list/len
//
// Drive it with `proteusbench loadgen` (add --skew to diverge per-shard
// traffic) and see docs/serving.md and docs/sharding.md for the operator
// guides.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address")
	shards := flag.Int("shards", 1, "key-space shards, each an independent ProteusTM system with its own tuner")
	partitioner := flag.String("partitioner", "hash", "placement policy: hash (uniform) or range (order-preserving, scan-localizing)")
	keyUniverse := flag.Uint64("key-universe", 16384, "working key range the range partitioner pre-splits evenly (ignored by hash)")
	workers := flag.Int("workers", 8, "worker slots per shard (ceiling of the tuned parallelism degree)")
	queue := flag.Int("queue", 1024, "admission queue depth per shard (overflow returns HTTP 429)")
	autotune := flag.Bool("autotune", true, "run one RecTM adapter thread per shard over live traffic")
	samplePeriod := flag.Duration("sample-period", 100*time.Millisecond, "monitor KPI sampling period")
	seed := flag.Uint64("seed", 42, "tuning machinery seed")
	heapWords := flag.Int("heap-words", 1<<22, "transactional heap size per shard in 64-bit words")
	preload := flag.Int("preload", 8192, "pre-populate keys 0..n-1 before serving")
	maxScan := flag.Uint64("max-scan-span", 4096, "clamp on /kv/range spans")
	sloP99 := flag.Duration("slo-p99", 0, "p99 latency target: tuners optimize throughput-under-SLO and admission sheds on queue-wait p99 (0 = plain throughput)")
	deadline := flag.Duration("deadline", 0, "default per-op queueing budget; expired ops are dropped with 504 (0 = none; ?deadline_ms= tightens per request)")
	faultSpec := flag.String("fault", "", "deterministic fault-injection spec, e.g. coord-crash@after=3;every=5;count=6 (see internal/fault; empty = no injection)")
	fenceDeadline := flag.Duration("fence-deadline", 0, "age past which a heartbeat-stale cross-shard fence is declared orphaned and recovered (0 = 1s default)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "minimum time a stalled shard's circuit breaker sheds before admitting probes (0 = 1s default)")
	groupCommit := flag.Bool("group-commit", false, "coalesce queued single-shard ops into one TM transaction when the admission queue has backlog")
	groupCommitMax := flag.Int("group-commit-max", 0, "cap on ops coalesced per group commit (0 = 16 default)")
	fenceGranularity := flag.String("fence-granularity", "shard", "cross-shard fence granularity: shard (whole-shard word) or key (per-key fence table; non-intersecting local ops proceed during a 2PC)")
	autosplit := flag.Float64("autosplit", 0, "hottest-shard ops_routed share above which the daemon splits it live (range partitioner only; 0 = manual /admin/reshard only)")
	autosplitMax := flag.Int("autosplit-max", 0, "shard-count ceiling for --autosplit (0 = 8 default)")
	autosplitInterval := flag.Duration("autosplit-interval", 0, "how often --autosplit/--automerge check the load signal (0 = 2s default)")
	automerge := flag.Float64("automerge", 0, "top-shard share of per-interval routed ops below which the daemon merges it away live (range partitioner only; 0 = manual /admin/reshard only)")
	automergeMin := flag.Int("automerge-min", 0, "shard-count floor for --automerge (0 = the boot shard count)")
	spareGrace := flag.Duration("spare-grace", 0, "idle time after which a spare shard left by a rolled-back migration is retired (0 = 30s default)")
	flag.Parse()

	logger := log.New(os.Stderr, "proteusd: ", log.LstdFlags|log.Lmicroseconds)
	var injector *fault.Injector
	if *faultSpec != "" {
		var err error
		injector, err = fault.Parse(*faultSpec, *seed)
		if err != nil {
			logger.Fatalf("--fault: %v", err)
		}
		logger.Printf("fault injection armed: %s", injector)
	}
	srv, err := serve.New(serve.Options{
		Shards:             *shards,
		Partitioner:        *partitioner,
		KeyUniverse:        *keyUniverse,
		Workers:            *workers,
		QueueDepth:         *queue,
		AutoTune:           *autotune,
		SamplePeriod:       *samplePeriod,
		Seed:               *seed,
		HeapWords:          *heapWords,
		Preload:            *preload,
		MaxScanSpan:        *maxScan,
		SLOP99:             *sloP99,
		Deadline:           *deadline,
		Fault:              injector,
		FenceDeadline:      *fenceDeadline,
		BreakerCooldown:    *breakerCooldown,
		GroupCommit:        *groupCommit,
		GroupCommitMax:     *groupCommitMax,
		FenceGranularity:   *fenceGranularity,
		AutosplitShare:     *autosplit,
		AutosplitMaxShards: *autosplitMax,
		AutosplitInterval:  *autosplitInterval,
		AutomergeShare:     *automerge,
		AutomergeMinShards: *automergeMin,
		SpareGrace:         *spareGrace,
		Logf:               logger.Printf,
	})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}
	logger.Printf("serving on http://%s (shards=%d partitioner=%s workers=%d queue=%d autotune=%v preload=%d, initial config %s)",
		*addr, srv.Shards(), *partitioner, *workers, *queue, *autotune, *preload, srv.System().CurrentConfig())

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("received %s, draining %d shard(s)", sig, srv.Shards())
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("listen: %v", err)
			srv.Close() //nolint:errcheck // already failing
			os.Exit(1)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		logger.Printf("close: %v", err)
		os.Exit(1)
	}
	status := srv.StatusSnapshot()
	perShard := make([]string, len(status.Shards))
	for i, sh := range status.Shards {
		perShard[i] = fmt.Sprintf("shard %d: %s (%d phases)", sh.Index, sh.Config, sh.Phases)
	}
	fmt.Fprintf(os.Stderr, "proteusd: clean shutdown: %d ops served (%d cross-shard), %d commits, %d optimization phases; %s\n",
		status.Ops.Total, status.Ops.CrossOps, status.TM.Commits, status.Config.Phases, strings.Join(perShard, "; "))
}
