package workloads

import (
	"fmt"

	"repro/internal/tm"
)

// TPCC is the in-memory TPC-C port of the paper (one atomic block per
// transaction): the five transaction types over warehouse / district /
// customer / stock / order tables laid out in the transactional heap.
// New-order and payment dominate the mix (TPC-C's 45/43/4/4/4 split).
type TPCC struct {
	Warehouses int
	Districts  int // per warehouse
	Customers  int // per district
	Items      int
	// Mix is the cumulative percentage split over {new-order, payment,
	// order-status, delivery, stock-level}; the zero value selects the
	// standard TPC-C 45/43/4/4/4. A read-heavy profile like
	// [10, 20, 60, 64, 100] turns the workload scan-dominated.
	Mix [5]int

	wTax    tm.Addr // warehouse: ytd
	dNext   tm.Addr // district: next order id + ytd (2 words each)
	cBal    tm.Addr // customer: balance + payment count (2 words each)
	stock   tm.Addr // item stock: quantity + ytd (2 words each)
	orders  tm.Addr // circular order log: (customer, item count) pairs
	nOrders int
}

// Name implements Workload.
func (t *TPCC) Name() string { return "tpcc" }

func (t *TPCC) defaults() {
	if t.Warehouses <= 0 {
		t.Warehouses = 4
	}
	if t.Districts <= 0 {
		t.Districts = 10
	}
	if t.Customers <= 0 {
		t.Customers = 256
	}
	if t.Items <= 0 {
		t.Items = 1 << 13
	}
	if t.Mix == [5]int{} {
		t.Mix = [5]int{45, 88, 92, 96, 100}
	}
}

// Setup implements Workload.
func (t *TPCC) Setup(h *tm.Heap, rng *Rand) error {
	t.defaults()
	var err error
	if t.wTax, err = h.Alloc(t.Warehouses); err != nil {
		return err
	}
	nd := t.Warehouses * t.Districts
	if t.dNext, err = h.Alloc(nd * 2); err != nil {
		return err
	}
	nc := nd * t.Customers
	if t.cBal, err = h.Alloc(nc * 2); err != nil {
		return err
	}
	if t.stock, err = h.Alloc(t.Items * 2); err != nil {
		return err
	}
	for i := 0; i < t.Items; i++ {
		h.StoreWord(t.stock+tm.Addr(i*2), 10000)
	}
	t.nOrders = 1 << 12
	if t.orders, err = h.Alloc(t.nOrders * 2); err != nil {
		return err
	}
	return nil
}

func (t *TPCC) district(w, d int) tm.Addr { return t.dNext + tm.Addr((w*t.Districts+d)*2) }
func (t *TPCC) customer(w, d, c int) tm.Addr {
	return t.cBal + tm.Addr(((w*t.Districts+d)*t.Customers+c)*2)
}

// Verify implements Verifier: every payment credits its warehouse YTD and
// district YTD in one atomic block, so the two totals must agree after any
// run — a lost or torn update in a TM backend breaks the equality. The
// scenario harness checks it after every tpcc run, in both modes.
func (t *TPCC) Verify(h *tm.Heap) error {
	var wSum, dSum uint64
	for w := 0; w < t.Warehouses; w++ {
		wSum += h.LoadWord(t.wTax + tm.Addr(w))
		for d := 0; d < t.Districts; d++ {
			dSum += h.LoadWord(t.district(w, d) + 1)
		}
	}
	if wSum != dSum {
		return fmt.Errorf("tpcc: money invariant broken: warehouse YTD %d != district YTD %d", wSum, dSum)
	}
	return nil
}

// Op implements Workload: draw a transaction type per the TPC-C mix.
func (t *TPCC) Op(r Runner, self int, rng *Rand) {
	w := rng.Intn(t.Warehouses)
	d := rng.Intn(t.Districts)
	c := rng.Intn(t.Customers)
	p := rng.Intn(100)
	switch {
	case p < t.Mix[0]:
		t.newOrder(r, self, rng, w, d, c)
	case p < t.Mix[1]:
		t.payment(r, self, rng, w, d, c)
	case p < t.Mix[2]:
		t.orderStatus(r, self, rng, w, d, c)
	case p < t.Mix[3]:
		t.delivery(r, self, rng, w, d)
	default:
		t.stockLevel(r, self, rng, w, d)
	}
	Spin(2)
}

// newOrder: reserve stock for 5-15 items and append to the order log.
func (t *TPCC) newOrder(r Runner, self int, rng *Rand, w, d, c int) {
	nItems := 5 + rng.Intn(11)
	items := make([]tm.Addr, nItems)
	for i := range items {
		items[i] = tm.Addr(rng.Intn(t.Items) * 2)
	}
	r.Atomic(self, func(tx tm.Txn) {
		dAddr := t.district(w, d)
		oid := tx.Load(dAddr)
		tx.Store(dAddr, oid+1)
		total := uint64(0)
		for _, it := range items {
			q := tx.Load(t.stock + it)
			if q < 10 {
				q += 91 // restock
			}
			tx.Store(t.stock+it, q-1)
			ytd := tx.Load(t.stock + it + 1)
			tx.Store(t.stock+it+1, ytd+1)
			total += q
		}
		slot := tm.Addr(int(oid)%t.nOrders) * 2
		tx.Store(t.orders+slot, uint64(c))
		tx.Store(t.orders+slot+1, uint64(nItems))
		cAddr := t.customer(w, d, c)
		tx.Store(cAddr, tx.Load(cAddr)+total)
	})
}

// payment: update warehouse, district and customer balances.
func (t *TPCC) payment(r Runner, self int, rng *Rand, w, d, c int) {
	amount := uint64(rng.Intn(5000) + 1)
	r.Atomic(self, func(tx tm.Txn) {
		tx.Store(t.wTax+tm.Addr(w), tx.Load(t.wTax+tm.Addr(w))+amount)
		dAddr := t.district(w, d) + 1
		tx.Store(dAddr, tx.Load(dAddr)+amount)
		cAddr := t.customer(w, d, c)
		bal := tx.Load(cAddr)
		if bal >= amount {
			tx.Store(cAddr, bal-amount)
		} else {
			tx.Store(cAddr, 0)
		}
		tx.Store(cAddr+1, tx.Load(cAddr+1)+1)
	})
}

// orderStatus: read a customer's balance and the latest orders (read-only).
func (t *TPCC) orderStatus(r Runner, self int, rng *Rand, w, d, c int) {
	r.Atomic(self, func(tx tm.Txn) {
		cAddr := t.customer(w, d, c)
		_ = tx.Load(cAddr)
		_ = tx.Load(cAddr + 1)
		oid := tx.Load(t.district(w, d))
		for i := uint64(0); i < 8 && i < oid; i++ {
			slot := tm.Addr(int(oid-1-i)%t.nOrders) * 2
			_ = tx.Load(t.orders + slot)
			_ = tx.Load(t.orders + slot + 1)
		}
	})
}

// delivery: retire the oldest orders of a district.
func (t *TPCC) delivery(r Runner, self int, rng *Rand, w, d int) {
	r.Atomic(self, func(tx tm.Txn) {
		dAddr := t.district(w, d)
		oid := tx.Load(dAddr)
		for i := uint64(0); i < 10 && i < oid; i++ {
			slot := tm.Addr(int(oid-1-i)%t.nOrders) * 2
			cust := tx.Load(t.orders + slot)
			cAddr := t.customer(w, d, int(cust)%t.Customers)
			tx.Store(cAddr+1, tx.Load(cAddr+1)+1)
		}
	})
}

// stockLevel: count low-stock items in a window (long read-only scan).
func (t *TPCC) stockLevel(r Runner, self int, rng *Rand, w, d int) {
	start := rng.Intn(t.Items - 200)
	r.Atomic(self, func(tx tm.Txn) {
		low := 0
		for i := 0; i < 200; i++ {
			if tx.Load(t.stock+tm.Addr((start+i)*2)) < 1000 {
				low++
			}
		}
		_ = low
	})
}
