// Package rectm assembles RecTM (§5 of the paper): the Recommender (a
// normalizing CF ensemble acting as performance predictor) and the
// Controller's SMBO exploration of new workloads. It implements the
// work-flow of Algorithm 2: off-line profiling of a training set of
// applications, rating distillation and Utility Matrix construction,
// CF-algorithm selection with random search and cross-validation, and the
// on-line sample–recommend loop for incoming workloads.
package rectm

import (
	"fmt"
	"math"

	"repro/internal/cf"
	"repro/internal/smbo"
)

// Options configures recommender training.
type Options struct {
	// Normalizer preprocesses KPI goodness into ratings; nil selects
	// ProteusTM's rating distillation.
	Normalizer cf.Normalizer
	// Predictor, when non-nil, fixes the base CF learner and skips model
	// selection (used by experiments that pin e.g. KNN-cosine).
	Predictor func() cf.Predictor
	// Learners is the bagging ensemble size (default 10, as the paper).
	Learners int
	// CVFolds and SearchBudget parameterize model selection.
	CVFolds, SearchBudget int
	// Seed drives every randomized component.
	Seed uint64
}

// Recommender is a trained RecTM instance for one machine profile and KPI.
type Recommender struct {
	// HigherIsBetter is the KPI orientation (ratings are always
	// higher-is-better internally).
	HigherIsBetter bool
	// Norm is the fitted normalizer.
	Norm cf.Normalizer
	// Ensemble is the bagged CF model.
	Ensemble *cf.Bagging
	// Selected reports the chosen base learner (after model selection).
	Selected string
	// Cols is the number of configurations (columns).
	Cols int
}

// Train builds a Recommender from a training KPI matrix (rows = profiled
// workloads, columns = configurations, entries = raw KPI values; NaN where
// unprofiled).
func Train(trainKPI *cf.Matrix, higherIsBetter bool, opts Options) (*Recommender, error) {
	goodness := cf.GoodnessMatrix(trainKPI, higherIsBetter)
	norm := opts.Normalizer
	if norm == nil {
		norm = &cf.Distiller{}
	}
	if err := norm.Fit(goodness); err != nil {
		return nil, fmt.Errorf("rectm: normalizer fit: %w", err)
	}
	ratings, _ := cf.NormalizeMatrix(norm, goodness)

	newPred := opts.Predictor
	selected := "fixed"
	if newPred == nil {
		best, _ := cf.SelectModel(ratings, cf.DefaultCandidates(), opts.CVFolds, opts.SearchBudget, opts.Seed)
		if best.New == nil {
			return nil, fmt.Errorf("rectm: model selection produced no candidate")
		}
		newPred = best.New
		selected = best.Name
	}
	ens := &cf.Bagging{
		Learners: opts.Learners,
		New:      func(i int) cf.Predictor { return newPred() },
		Seed:     opts.Seed,
	}
	ens.Fit(ratings)
	return &Recommender{
		HigherIsBetter: higherIsBetter,
		Norm:           norm,
		Ensemble:       ens,
		Selected:       selected,
		Cols:           trainKPI.Cols,
	}, nil
}

// RefCol returns the reference configuration the Controller should profile
// first: the distillation reference when available, otherwise column 0.
func (r *Recommender) RefCol() int {
	if d, ok := r.Norm.(*cf.Distiller); ok {
		return d.RefCol
	}
	return 0
}

// ratingsFor normalizes a raw goodness row. When the normalizer is the
// distiller and the reference configuration has not been sampled, the row's
// scale is re-estimated by a second pass: the scale-invariant neighbour
// consensus (PredictFull) supplies reference-scale predictions at the known
// columns, and least squares aligns the row to them — a sharper estimate
// than the distiller's column-means fallback.
func (r *Recommender) ratingsFor(goodness []float64) ([]float64, func(int, float64) float64) {
	ratings, denorm := r.Norm.NormalizeRow(-1, goodness)
	d, isDistill := r.Norm.(*cf.Distiller)
	if !isDistill || r.Ensemble == nil {
		return ratings, denorm
	}
	if ref := d.RefCol; ref >= 0 && ref < len(goodness) && !cf.IsMissing(goodness[ref]) {
		return ratings, denorm // exact scale available
	}
	consensus := r.Ensemble.PredictFull(ratings)
	num, den := 0.0, 0.0
	for i, g := range goodness {
		if cf.IsMissing(g) || cf.IsMissing(consensus[i]) || consensus[i] <= 0 {
			continue
		}
		num += g * g
		den += g * consensus[i]
	}
	if num <= 0 || den <= 0 {
		return ratings, denorm
	}
	scale := num / den
	out := make([]float64, len(goodness))
	for i, g := range goodness {
		if cf.IsMissing(g) {
			out[i] = cf.Missing
		} else {
			out[i] = g / scale
		}
	}
	return out, func(_ int, rr float64) float64 { return rr * scale }
}

// PredictKPI completes a raw KPI row: known entries are the sampled
// configurations, and the returned row carries KPI-space predictions for the
// rest (used for MAPE evaluation).
func (r *Recommender) PredictKPI(rawKPI []float64) []float64 {
	goodness := make([]float64, len(rawKPI))
	for i, v := range rawKPI {
		goodness[i] = cf.Goodness(v, r.HigherIsBetter)
	}
	ratings, denorm := r.ratingsFor(goodness)
	pred := r.Ensemble.Predict(ratings)
	out := make([]float64, len(rawKPI))
	for i := range out {
		if !cf.IsMissing(rawKPI[i]) {
			out[i] = rawKPI[i]
			continue
		}
		if cf.IsMissing(pred[i]) {
			out[i] = cf.Missing
			continue
		}
		g := denorm(i, pred[i])
		if r.HigherIsBetter {
			out[i] = g
		} else if g != 0 {
			out[i] = 1 / g
		} else {
			out[i] = cf.Missing
		}
	}
	return out
}

// PredictRatings completes a rating row directly (rating space in, rating
// space out).
func (r *Recommender) PredictRatings(ratings []float64) []float64 {
	return r.Ensemble.Predict(ratings)
}

// OptResult is the outcome of one online optimization (§6.3 protocol).
type OptResult struct {
	// Explored lists sampled configurations in order.
	Explored []int
	// Best is the recommended configuration: best KPI among explored.
	Best int
	// BestKPI is its sampled KPI.
	BestKPI float64
}

// Optimize runs the Controller's exploration for a new workload. sample(i)
// profiles configuration i and returns its raw KPI. initial configures the
// first profiled columns (nil = the recommender's reference configuration).
// The protocol matches §6.3: profile the reference, explore per the
// acquisition policy until the stop rule fires, ask the model for its final
// recommendation, profile it if new, and return the best explored
// configuration.
func (r *Recommender) Optimize(sample func(int) float64, initial []int, opts smbo.Options) OptResult {
	cols := r.Cols
	raw := make([]float64, cols)
	for i := range raw {
		raw[i] = cf.Missing
	}
	res := OptResult{}
	takeSample := func(i int) {
		if !cf.IsMissing(raw[i]) {
			return
		}
		kpi := sample(i)
		raw[i] = cf.Goodness(kpi, r.HigherIsBetter)
		res.Explored = append(res.Explored, i)
	}
	if len(initial) == 0 {
		initial = []int{r.RefCol()}
	}
	for _, i := range initial {
		takeSample(i)
	}

	eps := opts.Epsilon
	if eps == 0 {
		eps = 0.01
	}
	maxExpl := opts.MaxExplorations
	if maxExpl <= 0 || maxExpl > cols {
		maxExpl = cols
	}
	rng := opts.Seed*0x9E3779B97F4A7C15 + 0x106689D45497FDB5

	prevEI, prevPrevEI := math.Inf(1), math.Inf(1)
	lastImprovement := math.Inf(1)
	for steps := 0; steps < maxExpl; steps++ {
		ratings, _ := r.ratingsFor(raw)
		mean, variance := r.Ensemble.PredictDist(ratings)
		incumbent := bestKnown(ratings)
		next, nextEI := smbo.PickNext(ratings, mean, variance, incumbent, opts.Policy, &rng)
		if next < 0 {
			break
		}
		if smbo.ShouldStop(opts.Stop, eps, incumbent, nextEI, prevEI, prevPrevEI, lastImprovement) {
			break
		}
		takeSample(next)
		ratingsAfter, _ := r.ratingsFor(raw)
		newBest := bestKnown(ratingsAfter)
		if newBest > incumbent && !math.IsInf(incumbent, -1) && incumbent != 0 {
			lastImprovement = (newBest - incumbent) / math.Abs(incumbent)
		} else {
			lastImprovement = 0
		}
		prevPrevEI, prevEI = prevEI, nextEI
	}

	// Final recommendation: the model's argmax; profile it if unexplored.
	if !opts.NoFinalCheck {
		ratings, _ := r.ratingsFor(raw)
		mean, _ := r.Ensemble.PredictDist(ratings)
		bestPred, bestIdx := math.Inf(-1), -1
		for i := 0; i < cols; i++ {
			v := mean[i]
			if !cf.IsMissing(ratings[i]) {
				v = ratings[i]
			}
			if cf.IsMissing(v) {
				continue
			}
			if v > bestPred {
				bestPred, bestIdx = v, i
			}
		}
		if bestIdx >= 0 && cf.IsMissing(raw[bestIdx]) {
			takeSample(bestIdx)
		}
	}

	// Recommend the best explored configuration by true goodness.
	bestG, best := math.Inf(-1), -1
	for _, i := range res.Explored {
		if raw[i] > bestG {
			bestG, best = raw[i], i
		}
	}
	res.Best = best
	if best >= 0 {
		if r.HigherIsBetter {
			res.BestKPI = raw[best]
		} else if raw[best] != 0 {
			res.BestKPI = 1 / raw[best]
		}
	}
	return res
}

func bestKnown(row []float64) float64 {
	best := math.Inf(-1)
	for _, v := range row {
		if !cf.IsMissing(v) && v > best {
			best = v
		}
	}
	return best
}

// Grow incorporates a newly profiled workload into the recommender's
// knowledge (§7: the UM grows as applications are optimized — sampled rows
// become training data for the next workload). rawKPI is the workload's KPI
// row with NaN at unsampled configurations; the ensemble is refitted on the
// extended rating matrix. trainKPI is the matrix the recommender was
// trained on; the extended matrix is returned for the caller to keep.
func (r *Recommender) Grow(trainKPI *cf.Matrix, rawKPI []float64) (*cf.Matrix, error) {
	if len(rawKPI) != r.Cols {
		return nil, fmt.Errorf("rectm: row has %d columns, want %d", len(rawKPI), r.Cols)
	}
	extended := trainKPI.Clone()
	row := make([]float64, len(rawKPI))
	copy(row, rawKPI)
	extended.Data = append(extended.Data, row)
	extended.Rows++

	goodness := cf.GoodnessMatrix(extended, r.HigherIsBetter)
	if err := r.Norm.Fit(goodness); err != nil {
		return nil, fmt.Errorf("rectm: refit normalizer: %w", err)
	}
	ratings, _ := cf.NormalizeMatrix(r.Norm, goodness)
	r.Ensemble.Fit(ratings)
	return extended, nil
}
