package ml_test

import (
	"testing"

	"repro/internal/ml"
)

// xorish builds a simple 2-class dataset separable by x0 > 0.5 with a third
// class in a corner, to exercise multi-class paths.
func dataset() (x [][]float64, y []int) {
	grid := []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95}
	for _, a := range grid {
		for _, b := range grid {
			x = append(x, []float64{a, b})
			switch {
			case a > 0.6 && b > 0.6:
				y = append(y, 2)
			case a > 0.5:
				y = append(y, 1)
			default:
				y = append(y, 0)
			}
		}
	}
	return x, y
}

func accuracy(c ml.Classifier, x [][]float64, y []int) float64 {
	correct := 0
	for i := range x {
		if c.Predict(x[i]) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(x))
}

func TestCARTSeparates(t *testing.T) {
	x, y := dataset()
	c := &ml.CART{MaxDepth: 8, MinLeaf: 1}
	c.Fit(x, y)
	if acc := accuracy(c, x, y); acc < 0.98 {
		t.Errorf("CART training accuracy %.2f, want ≥0.98 on separable data", acc)
	}
}

func TestSMOSeparates(t *testing.T) {
	x, y := dataset()
	c := &ml.SMO{C: 10, Seed: 5}
	c.Fit(x, y)
	if acc := accuracy(c, x, y); acc < 0.85 {
		t.Errorf("SMO training accuracy %.2f, want ≥0.85 on near-separable data", acc)
	}
}

func TestMLPSeparates(t *testing.T) {
	x, y := dataset()
	c := &ml.MLP{Hidden: 16, Epochs: 300, LR: 0.05, Seed: 9}
	c.Fit(x, y)
	if acc := accuracy(c, x, y); acc < 0.9 {
		t.Errorf("MLP training accuracy %.2f, want ≥0.9", acc)
	}
}

func TestTunePicksWorkingSpec(t *testing.T) {
	x, y := dataset()
	spec := ml.Tune(ml.CandidatesCART(), x, y, 3, 6, 42)
	if spec.New == nil {
		t.Fatal("no spec selected")
	}
	c := spec.New()
	c.Fit(x, y)
	if acc := accuracy(c, x, y); acc < 0.9 {
		t.Errorf("tuned CART accuracy %.2f", acc)
	}
}

func TestClassifiersHandleSingleClass(t *testing.T) {
	x := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := []int{7, 7, 7}
	for _, c := range []ml.Classifier{&ml.CART{}, &ml.SMO{}, &ml.MLP{Epochs: 10}} {
		c.Fit(x, y)
		if got := c.Predict([]float64{2, 3}); got != 7 {
			t.Errorf("%s: predicted %d on single-class data, want 7", c.Name(), got)
		}
	}
}
