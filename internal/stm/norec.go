package stm

import "repro/internal/tm"

// NOrec (Dalessandro, Spear, Scott — PPoPP 2010) abolishes ownership
// records: the only global metadata is a sequence lock (we reuse the heap's
// global clock; odd values mean a writer is committing). Reads are validated
// by value, so NOrec has minimal metadata traffic and excels at low thread
// counts and short transactions, but commits serialize on the single lock,
// capping write scalability — exactly the trade-off that makes it
// complementary to the other STMs in PolyTM's library.
type NOrec struct{}

// Name implements tm.Algorithm.
func (NOrec) Name() string { return "norec" }

// Begin implements tm.Algorithm: wait for a quiescent (even) sequence-lock
// value and snapshot it.
func (NOrec) Begin(c *tm.Ctx) {
	c.ResetSets()
	c.RV = waitEven(c.H)
	c.AbortReason = tm.AbortNone
}

// Load implements tm.Algorithm. If the sequence lock moved since the
// snapshot, the whole value-based read set is revalidated against a new
// snapshot before the read is retried (NOrec's post-validation loop).
func (n NOrec) Load(c *tm.Ctx, a tm.Addr) uint64 {
	if v, ok := c.WS.Get(a); ok {
		return v
	}
	h := c.H
	v := h.LoadWord(a)
	for h.Clock() != c.RV {
		c.RV = validateValues(c)
		v = h.LoadWord(a)
	}
	c.VRS.Add(a, v)
	return v
}

// Store implements tm.Algorithm: buffer the write.
func (NOrec) Store(c *tm.Ctx, a tm.Addr, v uint64) {
	c.WS.Put(a, v)
}

// Commit implements tm.Algorithm: acquire the global sequence lock with a
// CAS from the snapshot (revalidating on every failure), publish the redo
// log, and release by bumping the lock to the next even value.
func (NOrec) Commit(c *tm.Ctx) bool {
	if c.WS.Len() == 0 {
		return true
	}
	h := c.H
	for !h.ClockCAS(c.RV, c.RV+1) {
		c.RV = validateValues(c)
	}
	for _, e := range c.WS.Entries() {
		h.StoreWord(e.Addr, e.Val)
	}
	h.ClockStore(c.RV + 2)
	return true
}

// Abort implements tm.Algorithm. NOrec holds nothing between attempts.
func (NOrec) Abort(*tm.Ctx) {}

// waitEven spins until the sequence lock is even (no writer) and returns it.
func waitEven(h *tm.Heap) uint64 {
	for {
		v := h.Clock()
		if v&1 == 0 {
			return v
		}
	}
}

// validateValues re-reads every address in the value-based read set under a
// stable sequence-lock value; a single changed value aborts the transaction.
// Returns the new consistent snapshot.
func validateValues(c *tm.Ctx) uint64 {
	h := c.H
	for {
		snap := waitEven(h)
		ok := true
		for _, e := range c.VRS.Entries() {
			if h.LoadWord(e.Addr) != e.Val {
				ok = false
				break
			}
		}
		if !ok {
			c.Retry(tm.AbortConflict)
		}
		if h.Clock() == snap {
			return snap
		}
	}
}
