package scenario

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/config"
)

// batchSpec is the pinned parameterization of the service-batch goldens:
// the two legs differ ONLY in the groupcommit knob, so they build
// identical micro-op plans from the identical rng stream and differ only
// in transaction boundaries.
func batchSpec(groupCommit string) RunSpec {
	return RunSpec{
		Scenario: "service-batch",
		Params: Values{
			"shards":      "4",
			"keyrange":    "1024",
			"batchmax":    "8",
			"crossevery":  "32",
			"batchkeys":   "4",
			"groupcommit": groupCommit,
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        3000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceBatchDeterminism pins both A/B legs byte-for-byte: a fixed
// seed produces the identical record across runs and against the
// committed goldens. Regenerate with UPDATE_GOLDEN=1 after intentional
// changes.
func TestServiceBatchDeterminism(t *testing.T) {
	for _, leg := range []struct {
		name, groupCommit, golden string
	}{
		{"on", "1", "testdata/service_batch_on.golden"},
		{"off", "0", "testdata/service_batch_off.golden"},
	} {
		t.Run(leg.name, func(t *testing.T) {
			a, err := Run(batchSpec(leg.groupCommit))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(batchSpec(leg.groupCommit))
			if err != nil {
				t.Fatal(err)
			}
			ja, jb := marshalResults(t, a), marshalResults(t, b)
			if !bytes.Equal(ja, jb) {
				t.Fatalf("two batch runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
			}
			m := a[0].Metrics
			switch leg.name {
			case "on":
				if m["group_commits"] == 0 || m["grouped_ops"] == 0 {
					t.Fatalf("group-commit leg coalesced nothing: %v", m)
				}
			case "off":
				if m["group_commits"] != 0 || m["grouped_ops"] != 0 {
					t.Fatalf("solo leg reports group commits: %v", m)
				}
			}
			if m["cross_batches"] == 0 {
				t.Fatalf("no cross-shard batches ran: %v", m)
			}

			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(leg.golden, ja, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(leg.golden)
			if err != nil {
				t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", leg.golden, err)
			}
			if !bytes.Equal(ja, want) {
				t.Errorf("service-batch %s record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s",
					leg.name, leg.golden, ja, want)
			}
		})
	}
}

// TestServiceBatchLegsConverge is the metamorphic acceptance criterion:
// group commit must change transaction boundaries and nothing else, so
// the identical seeded op stream replayed with the knob on vs. off must
// leave byte-identical KV end-state (equal heap digests) with both legs
// passing the routing/fence Verifier (Run fails on violation).
func TestServiceBatchLegsConverge(t *testing.T) {
	on, err := Run(batchSpec("1"))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(batchSpec("0"))
	if err != nil {
		t.Fatal(err)
	}
	if on[0].HeapDigest != off[0].HeapDigest {
		t.Fatalf("group commit changed the end state: on %s != off %s", on[0].HeapDigest, off[0].HeapDigest)
	}
	// The legs must still be distinguishable by their batch counters,
	// otherwise the knob pinned nothing.
	if on[0].Metrics["group_commits"] == off[0].Metrics["group_commits"] {
		t.Fatalf("legs report identical group_commits = %d", on[0].Metrics["group_commits"])
	}
}
