package tm

// smallSetLinear is the write-set size up to which membership lookups use a
// linear scan; beyond it an open-addressed index is maintained. Most
// transactions in the benchmark suite write fewer than a dozen words, so the
// common case stays allocation- and hash-free.
const smallSetLinear = 16

// fpMult is the 64-bit Fibonacci-hashing multiplier shared by the
// fingerprint filters and the open-addressed probe sequence.
const fpMult = 0x9E3779B97F4A7C15

// fpBit maps x to one bit of a 64-bit Bloom-style fingerprint filter (the
// top six bits of a Fibonacci hash pick the bit). A filter miss proves the
// key was never added; a hit means "possibly present, fall back to a real
// lookup". With the handful of distinct keys a typical transaction touches,
// false positives are rare, so the dominant case — a transactional read that
// misses the write set — costs one multiply, one shift and one AND.
func fpBit(x uint64) uint64 { return 1 << ((x * fpMult) >> 58) }

// idxHash spreads an address over the open-addressed table's slots.
func idxHash(a Addr) uint32 { return uint32((uint64(a) * fpMult) >> 32) }

// WEntry is one redo-log entry of a WriteSet.
type WEntry struct {
	Addr Addr
	Val  uint64
}

// WriteSet is a redo log with O(1) amortized lookup. Membership is gated by
// an address-fingerprint filter; storage is an insertion-ordered entry slice
// (the publication order at commit) indexed, once the set outgrows
// smallSetLinear, by an inline open-addressed table instead of a Go map, so
// even large-transaction lookups stay free of map-runtime calls. It is
// reused across transactions: Reset keeps the backing storage.
type WriteSet struct {
	entries []WEntry
	filter  uint64
	// idx is the open-addressed table: idx[slot] holds an index into
	// entries, or -1 for an empty slot. len(idx) is a power of two.
	idx     []int32
	indexed bool
}

func (w *WriteSet) init() {
	w.entries = make([]WEntry, 0, 64)
}

// Len returns the number of distinct addresses in the set.
func (w *WriteSet) Len() int { return len(w.entries) }

// Entries exposes the log in insertion order; callers must not retain the
// slice across Reset.
func (w *WriteSet) Entries() []WEntry { return w.entries }

// Put records the write of v to a, overwriting any earlier write to a.
func (w *WriteSet) Put(a Addr, v uint64) {
	bit := fpBit(uint64(a))
	if w.indexed {
		mask := uint32(len(w.idx) - 1)
		slot := idxHash(a) & mask
		for {
			i := w.idx[slot]
			if i < 0 {
				break
			}
			if w.entries[i].Addr == a {
				w.entries[i].Val = v
				return
			}
			slot = (slot + 1) & mask
		}
		w.idx[slot] = int32(len(w.entries))
		w.entries = append(w.entries, WEntry{a, v})
		w.filter |= bit
		if 4*len(w.entries) > 3*len(w.idx) {
			w.growIndex(2 * len(w.idx))
		}
		return
	}
	if w.filter&bit != 0 {
		for i := range w.entries {
			if w.entries[i].Addr == a {
				w.entries[i].Val = v
				return
			}
		}
	}
	w.filter |= bit
	w.entries = append(w.entries, WEntry{a, v})
	if len(w.entries) > smallSetLinear {
		w.growIndex(4 * smallSetLinear)
	}
}

// Get returns the buffered value for a, if any. The filter test up front is
// the whole cost of the dominant case (a read that was never written).
func (w *WriteSet) Get(a Addr) (uint64, bool) {
	if w.filter&fpBit(uint64(a)) == 0 {
		return 0, false
	}
	return w.lookup(a)
}

// lookup resolves a possibly-present address after a filter hit.
func (w *WriteSet) lookup(a Addr) (uint64, bool) {
	if w.indexed {
		mask := uint32(len(w.idx) - 1)
		for slot := idxHash(a) & mask; ; slot = (slot + 1) & mask {
			i := w.idx[slot]
			if i < 0 {
				return 0, false
			}
			if w.entries[i].Addr == a {
				return w.entries[i].Val, true
			}
		}
	}
	// Put overwrites in place, so each address appears at most once and a
	// forward scan finds the (unique) entry — scan direction is irrelevant
	// for correctness and forward is friendlier to the prefetcher.
	for i := range w.entries {
		if w.entries[i].Addr == a {
			return w.entries[i].Val, true
		}
	}
	return 0, false
}

// growIndex (re)builds the open-addressed table with the given slot count,
// reusing the previous allocation when it is already big enough.
func (w *WriteSet) growIndex(slots int) {
	if cap(w.idx) >= slots {
		w.idx = w.idx[:slots]
	} else {
		w.idx = make([]int32, slots)
	}
	for i := range w.idx {
		w.idx[i] = -1
	}
	mask := uint32(slots - 1)
	for i := range w.entries {
		slot := idxHash(w.entries[i].Addr) & mask
		for w.idx[slot] >= 0 {
			slot = (slot + 1) & mask
		}
		w.idx[slot] = int32(i)
	}
	w.indexed = true
}

// Reset empties the set, retaining capacity (entry storage and, once grown,
// the index table).
func (w *WriteSet) Reset() {
	w.entries = w.entries[:0]
	w.filter = 0
	w.indexed = false
}

// RSEntry is one ownership-record read-set entry: the stripe index and the
// version observed when the read was performed.
type RSEntry struct {
	Stripe  uint32
	Version uint64
}

// readDedupWindow bounds the duplicate scan ReadSet.Add performs after a
// fingerprint-filter hit. Re-reads cluster on recently-read stripes (list
// heads, tree roots, neighbouring fields of one node), so a short backward
// window collapses almost all duplicates while keeping Add O(1) even for
// read sets large enough to saturate the 64-bit filter. Duplicates that
// slip past the window are merely re-validated, never incorrect.
const readDedupWindow = 8

// ReadSet is the ownership-record read set used by TL2, TinySTM and SwissTM.
// Entries are deduplicated per (stripe, version) with the fingerprint-filter
// trick, so validation work no longer grows with re-reads of the same
// stripe. Within one attempt a stripe can only ever be recorded at a single
// version (any version move past the snapshot aborts or is re-validated by
// extension), so matching on the pair is exact, not lossy.
type ReadSet struct {
	entries []RSEntry
	filter  uint64
}

// Len returns the number of recorded reads.
func (r *ReadSet) Len() int { return len(r.entries) }

// Entries exposes the recorded reads; callers must not retain across Reset.
func (r *ReadSet) Entries() []RSEntry { return r.entries }

// Add records that the stripe was read at the given version.
func (r *ReadSet) Add(stripe uint32, version uint64) {
	bit := fpBit(uint64(stripe))
	if r.filter&bit != 0 {
		lo := len(r.entries) - readDedupWindow
		if lo < 0 {
			lo = 0
		}
		for i := len(r.entries) - 1; i >= lo; i-- {
			if r.entries[i].Stripe == stripe && r.entries[i].Version == version {
				return
			}
		}
	}
	r.filter |= bit
	r.entries = append(r.entries, RSEntry{stripe, version})
}

// Reset empties the set, retaining capacity.
func (r *ReadSet) Reset() {
	r.entries = r.entries[:0]
	r.filter = 0
}

// VEntry is one value-based read-set entry (NOrec).
type VEntry struct {
	Addr Addr
	Val  uint64
}

// ValueReadSet is NOrec's value-based read log.
type ValueReadSet struct {
	entries []VEntry
}

// Len returns the number of recorded reads.
func (r *ValueReadSet) Len() int { return len(r.entries) }

// Entries exposes the recorded reads; callers must not retain across Reset.
func (r *ValueReadSet) Entries() []VEntry { return r.entries }

// Add records that address a held value v when read.
func (r *ValueReadSet) Add(a Addr, v uint64) {
	r.entries = append(r.entries, VEntry{a, v})
}

// Reset empties the set, retaining capacity.
func (r *ValueReadSet) Reset() { r.entries = r.entries[:0] }

// LockEntry records a stripe locked encounter-time together with the record
// value it held before locking, so aborts can restore it. PrevRVer
// additionally preserves SwissTM's read-version for the stripe (unused by
// the single-lock-word algorithms).
type LockEntry struct {
	Stripe   uint32
	PrevVal  uint64
	PrevRVer uint64
}

// LockSet tracks the ownership records a transaction holds. A stripe
// fingerprint filter makes the common Holds miss a single AND/test.
type LockSet struct {
	entries []LockEntry
	filter  uint64
}

func (l *LockSet) init() { l.entries = make([]LockEntry, 0, 32) }

// Len returns the number of held locks.
func (l *LockSet) Len() int { return len(l.entries) }

// Entries exposes the held locks; callers must not retain across Reset.
func (l *LockSet) Entries() []LockEntry { return l.entries }

// Add records that the stripe was locked and held prev before.
func (l *LockSet) Add(stripe uint32, prev uint64) {
	l.filter |= fpBit(uint64(stripe))
	l.entries = append(l.entries, LockEntry{Stripe: stripe, PrevVal: prev})
}

// AddWithRVer records a locked stripe together with its read-version at lock
// time (SwissTM).
func (l *LockSet) AddWithRVer(stripe uint32, prev, prevRVer uint64) {
	l.filter |= fpBit(uint64(stripe))
	l.entries = append(l.entries, LockEntry{Stripe: stripe, PrevVal: prev, PrevRVer: prevRVer})
}

// Holds reports whether the stripe is already in the lock set.
func (l *LockSet) Holds(stripe uint32) bool {
	if l.filter&fpBit(uint64(stripe)) == 0 {
		return false
	}
	for i := range l.entries {
		if l.entries[i].Stripe == stripe {
			return true
		}
	}
	return false
}

// Reset empties the set, retaining capacity.
func (l *LockSet) Reset() {
	l.entries = l.entries[:0]
	l.filter = 0
}
