// TPC-C-lite: the paper's OLTP workload as a thin invocation of the
// scenario registry — warehouses, districts, customers and stock live in
// the transactional heap (internal/workloads.TPCC), and each business
// transaction is one atomic block. The example compares a few static
// configurations under the standard 45/43/4/4/4 mix and the read-heavy
// variant.
//
// The equivalent CLI run is:
//
//	proteusbench run --scenario tpcc --config GL:1t,NOrec:4t,Swiss:8t,"HTM:8t GiveUp-8" \
//	    --duration 500ms
//
//	go run ./examples/tpcc
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/config"
	"repro/internal/scenario"
)

func main() {
	configs, err := config.ParseList(`GL:1t,NOrec:4t,Swiss:8t,HTM:8t GiveUp-8`)
	if err != nil {
		log.Fatal(err)
	}
	for _, mix := range []string{"standard", "readheavy"} {
		fmt.Printf("\ntpcc, %s mix:\n", mix)
		results, err := scenario.Run(scenario.RunSpec{
			Scenario:   "tpcc",
			Params:     scenario.Values{"warehouses": "4", "mix": mix},
			Seed:       11,
			Configs:    configs,
			MaxThreads: 8,
			Duration:   500 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			fmt.Printf("  %-18s committed %9d transactions in %.0fms (abort-rate %.3f)\n",
				r.Config, r.Commits, r.ElapsedSec*1000, r.AbortRate)
		}
	}
	// The harness checked TPCC's money invariant (warehouse YTD ==
	// district YTD) after every run above; a violation would have failed
	// scenario.Run.
	fmt.Println("\nmoney invariant held under every configuration")
}
