// Package config defines the TM configuration encoding shared by PolyTM,
// the machine profiles and the recommender: which TM algorithm runs, at what
// parallelism degree, and with which HTM contention-management parameters.
// A configuration is one column of RecTM's Utility Matrix.
package config

import (
	"fmt"

	"repro/internal/htm"
)

// AlgID identifies one TM backend in PolyTM's library.
type AlgID uint8

const (
	// TL2 is commit-time-locking STM (Dice/Shalev/Shavit).
	TL2 AlgID = iota
	// TinySTM is encounter-time-locking STM with timestamp extension.
	TinySTM
	// NOrec is the ownership-record-free STM.
	NOrec
	// SwissTM is the mixed eager/lazy STM.
	SwissTM
	// HTM is the simulated best-effort hardware TM with lock fallback.
	HTM
	// Hybrid is the HTM fast path with NOrec software fallback.
	Hybrid
	// GlobalLock is the single-lock baseline ("sequential").
	GlobalLock

	// NumAlgs is the number of algorithm identifiers.
	NumAlgs = int(GlobalLock) + 1
)

// String returns the short algorithm label used throughout the paper's
// tables ("Tiny: 8t", "HTM: 4t GiveUp-4", ...).
func (a AlgID) String() string {
	switch a {
	case TL2:
		return "TL2"
	case TinySTM:
		return "Tiny"
	case NOrec:
		return "NOrec"
	case SwissTM:
		return "Swiss"
	case HTM:
		return "HTM"
	case Hybrid:
		return "Hybrid"
	case GlobalLock:
		return "GL"
	}
	return "?"
}

// IsHTM reports whether the algorithm has hardware contention-management
// parameters worth tuning.
func (a AlgID) IsHTM() bool { return a == HTM || a == Hybrid }

// Config is one point of the multi-dimensional tuning space: the four
// dimensions of Table 3 in the paper.
type Config struct {
	// Alg is the TM backend.
	Alg AlgID
	// Threads is the parallelism degree (active worker threads).
	Threads int
	// Budget is the HTM retry budget (ignored for STMs).
	Budget int
	// Policy is the HTM capacity-abort policy (ignored for STMs).
	Policy htm.CapacityPolicy
}

// String renders the configuration in the paper's label style.
func (c Config) String() string {
	if c.Alg.IsHTM() {
		return fmt.Sprintf("%s:%dt %s-%d", c.Alg, c.Threads, policyLabel(c.Policy), c.Budget)
	}
	return fmt.Sprintf("%s:%dt", c.Alg, c.Threads)
}

func policyLabel(p htm.CapacityPolicy) string {
	switch p {
	case htm.PolicyGiveUp:
		return "GiveUp"
	case htm.PolicyDecrease:
		return "Linear"
	case htm.PolicyHalve:
		return "Half"
	}
	return "?"
}

// Key returns a compact comparable encoding, usable as a map key and stable
// across runs.
func (c Config) Key() uint32 {
	return uint32(c.Alg)<<24 | uint32(c.Threads)<<16 | uint32(c.Budget)<<8 | uint32(c.Policy)
}
