package scenario

import (
	"bytes"
	"os"
	"testing"

	"repro/internal/config"
)

// shardedSpec is the pinned parameterization of the golden record below:
// small enough for CI, large enough that every arm (skewed routing,
// per-shard scans, cross-shard 2PC batches) runs many times.
func shardedSpec() RunSpec {
	return RunSpec{
		Scenario: "service-sharded",
		Params: Values{
			"shards":     "4",
			"keyrange":   "1024",
			"span":       "32",
			"batchevery": "32",
		},
		Seed:       42,
		MaxThreads: 4,
		HeapWords:  1 << 20,
		Ops:        4000,
		Configs:    []config.Config{{Alg: config.TL2, Threads: 4}},
	}
}

// TestServiceShardedDeterminism pins the satellite acceptance criterion:
// the sharded scenario family produces byte-identical JSON records for a
// fixed seed, against a committed golden record. Regenerate with
// UPDATE_GOLDEN=1 after intentional changes.
func TestServiceShardedDeterminism(t *testing.T) {
	a, err := Run(shardedSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(shardedSpec())
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("two sharded runs of the same spec differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	if a[0].Commits == 0 || a[0].HeapDigest == "" {
		t.Fatalf("empty measurement: %+v", a[0])
	}

	const golden = "testdata/service_sharded.golden"
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, ja, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (regenerate with UPDATE_GOLDEN=1): %v", golden, err)
	}
	if !bytes.Equal(ja, want) {
		t.Errorf("service-sharded record drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- got\n%s\n--- want\n%s", golden, ja, want)
	}
}

// TestServiceShardedSkewChangesStream guards the skew knob: skewed and
// uniform routing must produce different operation streams (and therefore
// different heaps), otherwise the scenario's two arms are the same run.
func TestServiceShardedSkewChangesStream(t *testing.T) {
	spec := shardedSpec()
	spec.Params = spec.Params.Clone()
	spec.Params["skew"] = "0"
	uniform, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Params["skew"] = "1"
	skewed, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if uniform[0].HeapDigest == skewed[0].HeapDigest {
		t.Fatalf("skew=0 and skew=1 produced the same heap digest %s", uniform[0].HeapDigest)
	}
}

// TestServiceShardedAutoTuneDeterministic runs the sharded family under
// the full monitor/explore/install loop in virtual time, twice.
func TestServiceShardedAutoTuneDeterministic(t *testing.T) {
	spec := shardedSpec()
	spec.Configs = nil
	spec.AutoTune = true
	spec.Ops = 6000
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, jb := marshalResults(t, a), marshalResults(t, b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("auto-tuned sharded runs differ:\n--- run 1\n%s\n--- run 2\n%s", ja, jb)
	}
	if a[0].Phases < 1 {
		t.Errorf("phases = %d, want >= 1", a[0].Phases)
	}
}
